package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"egwalker"
)

// ErrQuarantined reports a document whose on-disk history is damaged:
// it serves the salvaged prefix read-only and refuses writes until
// Repair rebuilds it (from a replica's diff, or from the salvage alone).
var ErrQuarantined = errors.New("store: document is quarantined (on-disk corruption)")

// DamageKind classifies what a scrub (or recovery) found wrong.
type DamageKind int

const (
	// DamageTornTail is corruption inside the active segment's fsynced
	// prefix. Reopen-time recovery would silently truncate it away —
	// losing acknowledged events — which is exactly why the scrubber
	// quarantines it for repair instead.
	DamageTornTail DamageKind = iota + 1
	// DamageMidSegment is corruption in a sealed WAL segment: history
	// strictly older than the write frontier rotted or was overwritten.
	DamageMidSegment
	// DamageSnapshot is a snapshot that no longer decodes.
	DamageSnapshot
	// DamageMissing is a layout file (segment or snapshot the store
	// still relies on) that has vanished from the directory.
	DamageMissing
)

func (k DamageKind) String() string {
	switch k {
	case DamageTornTail:
		return "torn-tail"
	case DamageMidSegment:
		return "mid-segment"
	case DamageSnapshot:
		return "snapshot"
	case DamageMissing:
		return "missing-file"
	default:
		return fmt.Sprintf("damage(%d)", int(k))
	}
}

// Damage is one thing the scrubber found wrong with one file.
type Damage struct {
	Kind DamageKind
	File string // base name within the document directory
	Off  int64  // first unusable byte (segments; 0 for snapshots)
	Err  error

	seq  uint64 // file's sequence number, for layout-liveness rechecks
	snap bool
}

// ScrubReport summarizes one scrub pass over one document.
type ScrubReport struct {
	Segments  int   // segment files verified
	Snapshots int   // snapshot files verified
	Bytes     int64 // bytes read and checksummed
	Damage    []Damage
}

// ScrubLimiter is a token-bucket byte budget shared by scrub reads so
// a background pass never competes with the live path for disk
// bandwidth. A nil limiter (or rate <= 0) is unlimited.
type ScrubLimiter struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	budget float64 // may go negative: large reads pay their debt by sleeping
	last   time.Time
}

// NewScrubLimiter returns a limiter admitting bytesPerSec on average
// (<= 0: unlimited).
func NewScrubLimiter(bytesPerSec int64) *ScrubLimiter {
	return &ScrubLimiter{rate: float64(bytesPerSec)}
}

// Wait charges n bytes against the budget, sleeping off any debt.
func (l *ScrubLimiter) Wait(n int) {
	if l == nil || l.rate <= 0 || n <= 0 {
		return
	}
	l.mu.Lock()
	now := time.Now()
	if !l.last.IsZero() {
		l.budget += now.Sub(l.last).Seconds() * l.rate
	}
	l.last = now
	if l.budget > l.rate {
		l.budget = l.rate // at most one second of burst
	}
	l.budget -= float64(n)
	var sleep time.Duration
	if l.budget < 0 {
		sleep = time.Duration(-l.budget / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

// Scrub re-verifies the document's on-disk integrity: every sealed WAL
// segment's CRC32-C block envelopes, the active segment's fsynced
// prefix, and the current snapshot's decode. Reads happen outside the
// store's lock, paced by lim. Damage that is still part of the live
// layout when the pass ends (compaction may have deleted a file we
// were reading) quarantines the document. An already-quarantined,
// write-poisoned, or closed store scrubs nothing.
func (s *DocStore) Scrub(lim *ScrubLimiter) (ScrubReport, error) {
	s.mu.Lock()
	if s.closed || s.qerr != nil || s.werr != nil {
		s.mu.Unlock()
		return ScrubReport{}, nil
	}
	snapSeq, firstSeg, activeSeq, synced := s.snapSeq, s.firstSeg, s.activeSeq, s.syncedSize
	s.mu.Unlock()

	var rep ScrubReport
	// read returns nil data (and no damage) when the file vanished AND
	// the layout moved on — a compaction race, not corruption.
	read := func(path string, seq uint64, snap bool) ([]byte, bool) {
		data, err := s.fs.ReadFile(path)
		if err == nil {
			lim.Wait(len(data))
			return data, true
		}
		s.mu.Lock()
		live := seq == s.snapSeq
		if !snap {
			live = seq >= s.firstSeg && seq <= s.activeSeq
		}
		s.mu.Unlock()
		if live {
			rep.Damage = append(rep.Damage, Damage{
				Kind: DamageMissing, File: filepath.Base(path), Err: err, seq: seq, snap: snap,
			})
		}
		return nil, false
	}

	if snapSeq > 0 {
		path := filepath.Join(s.dir, snapName(snapSeq))
		if data, ok := read(path, snapSeq, true); ok {
			rep.Snapshots++
			rep.Bytes += int64(len(data))
			var err error
			if egwalker.IsCompactBatch(data) {
				_, err = egwalker.InspectBatch(data)
			} else {
				_, err = egwalker.Load(bytes.NewReader(data), s.agent)
			}
			if err != nil {
				rep.Damage = append(rep.Damage, Damage{
					Kind: DamageSnapshot, File: snapName(snapSeq), Err: err, seq: snapSeq, snap: true,
				})
			}
		}
	}

	for seq := firstSeg; seq <= activeSeq; seq++ {
		path := filepath.Join(s.dir, segName(seq))
		data, ok := read(path, seq, false)
		if !ok {
			continue
		}
		active := seq == activeSeq
		if active && int64(len(data)) > synced {
			// Only the fsynced prefix is stable; in-flight appends beyond
			// it are the live path's business, not bit rot. The prefix
			// always ends on a block boundary, so a clean segment scans
			// without a tail error.
			data = data[:synced]
		}
		w, err := walkSegmentBlocks(data, func([]byte) error { return nil })
		rep.Segments++
		rep.Bytes += int64(len(data))
		switch {
		case err != nil:
			rep.Damage = append(rep.Damage, Damage{
				Kind: DamageMidSegment, File: segName(seq), Err: err, seq: seq,
			})
		case w.tail != nil:
			kind := DamageMidSegment
			if active {
				kind = DamageTornTail
			}
			rep.Damage = append(rep.Damage, Damage{
				Kind: kind, File: segName(seq), Off: w.validLen, Err: w.tail, seq: seq,
			})
		}
	}

	if len(rep.Damage) == 0 {
		return rep, nil
	}
	// Re-check each finding against the layout as it stands now:
	// compaction may have legitimately deleted or replaced a file
	// mid-read. Whatever survives is real damage.
	s.mu.Lock()
	defer s.mu.Unlock()
	live := rep.Damage[:0]
	for _, d := range rep.Damage {
		if d.snap {
			if d.seq == s.snapSeq {
				live = append(live, d)
			}
		} else if d.seq >= s.firstSeg && d.seq <= s.activeSeq {
			live = append(live, d)
		}
	}
	rep.Damage = live
	if len(live) > 0 && s.qerr == nil && !s.closed {
		d := live[0]
		s.quarantineLocked(fmt.Errorf("scrub: %s damage in %s at %d: %w", d.Kind, d.File, d.Off, d.Err))
	}
	return rep, nil
}

// Quarantined reports whether the document is quarantined, and why.
func (s *DocStore) Quarantined() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.qerr != nil, s.qerr
}

// SalvageInfo reports what quarantine-time salvage kept and lost.
type SalvageInfo struct {
	// Events the salvaged prefix holds (what the store now serves).
	Events int
	// CorruptBlocks counts unreadable files / blocks skipped over.
	CorruptBlocks int
	// LostBytes is how much of the WAL was unusable.
	LostBytes int64
	// SkippedSnapshots counts snapshots passed over as unreadable.
	SkippedSnapshots int
	// DroppedEvents counts events that decoded but could not be applied
	// (their causal parents were in the damaged region). A replica diff
	// at repair time may still admit them.
	DroppedEvents int
}

// Salvage reports the last quarantine's salvage outcome. Meaningful
// while quarantined and after a repair.
func (s *DocStore) Salvage() SalvageInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.salvage
}

// quarantineLocked transitions the store to quarantine: writes refuse,
// block serving stops, compaction pressure is cleared, and the best
// salvageable document is materialized for read-only serving. Fires
// the onQuarantine hook once per transition.
func (s *DocStore) quarantineLocked(reason error) {
	if s.qerr != nil || s.closed {
		return
	}
	if s.doc == nil {
		// Journal-only: the history lives nowhere but the damaged disk.
		// Salvage what replays cleanly.
		start := time.Now()
		snaps, segs, err := s.scanDirSeqs()
		if err != nil {
			snaps, segs = nil, nil
		}
		doc, _, info := salvageDoc(s.fs, s.dir, s.agent, snaps, segs)
		s.doc = doc
		s.known = nil
		s.persisted = doc.Version()
		s.salvage = info
		if s.opts.onMaterialize != nil {
			s.opts.onMaterialize(time.Since(start))
		}
	} else {
		// Materialized: memory still holds everything the store
		// admitted; only the disk under it is lying. Nothing is lost
		// unless the process dies before repair.
		s.salvage = SalvageInfo{Events: s.doc.NumEvents()}
	}
	s.qerr = reason
	s.blockServable = false
	s.eventsSinceSnap = 0 // keep the compactor away
	if s.opts.onQuarantine != nil {
		s.opts.onQuarantine(reason)
	}
}

// recoverQuarantined is the open-time quarantine path: materialized
// recovery found damage truncation cannot repair, and Options.
// Quarantine asked for a salvaged read-only store instead of an error.
// No active segment is opened — a quarantined store journals nothing.
func (s *DocStore) recoverQuarantined(reason error) error {
	start := time.Now()
	snaps, segs, err := s.scanDirSeqs()
	if err != nil {
		return err
	}
	doc, snapSeq, info := salvageDoc(s.fs, s.dir, s.agent, snaps, segs)
	s.doc = doc
	s.snapSeq = snapSeq
	s.recovery.SnapshotSeq = snapSeq
	s.firstSeg = snapSeq
	if s.firstSeg == 0 && len(segs) > 0 {
		s.firstSeg = segs[0]
	}
	if len(segs) > 0 {
		s.activeSeq = segs[len(segs)-1]
	}
	s.persisted = doc.Version()
	s.numEvents = doc.NumEvents()
	s.salvage = info
	s.qerr = reason
	s.blockServable = false
	if s.opts.onMaterialize != nil {
		s.opts.onMaterialize(time.Since(start))
	}
	if s.opts.onQuarantine != nil {
		s.opts.onQuarantine(reason)
	}
	return nil
}

// salvageDoc replays everything that still parses: the newest loadable
// snapshot, then each segment's valid prefix, skipping damage instead
// of stopping at it. Events whose causal parents fell in a damaged
// region stay buffered as pending (a repair diff may admit them); the
// returned document serves the longest causally-closed prefix.
func salvageDoc(fsys FS, dir, agent string, snaps, segs []uint64) (*egwalker.Doc, uint64, SalvageInfo) {
	var info SalvageInfo
	var doc *egwalker.Doc
	snapSeq := uint64(0)
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := fsys.ReadFile(filepath.Join(dir, snapName(snaps[i])))
		if err == nil {
			d, lerr := egwalker.Load(bytes.NewReader(data), agent)
			if lerr == nil {
				doc, snapSeq = d, snaps[i]
				break
			}
		}
		info.SkippedSnapshots++
	}
	if doc == nil {
		doc = egwalker.NewDoc(agent)
	}
	for _, seq := range segs {
		if seq < snapSeq {
			continue
		}
		data, err := fsys.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			info.CorruptBlocks++
			continue
		}
		res, err := replaySegmentData(data)
		if err != nil {
			// Not recognizably a segment (mangled header): skip it whole.
			info.CorruptBlocks++
			info.LostBytes += int64(len(data))
			continue
		}
		for _, evs := range res.batches {
			if _, aerr := doc.Apply(evs); aerr != nil {
				info.DroppedEvents += len(evs)
			}
		}
		if res.tail != nil {
			info.CorruptBlocks++
			info.LostBytes += int64(len(data)) - res.validLen
		}
	}
	info.DroppedEvents += doc.PendingEvents()
	info.Events = doc.NumEvents()
	return doc, snapSeq, info
}

// RepairInfo reports what a Repair did.
type RepairInfo struct {
	// Salvaged is how many events the local salvage contributed.
	Salvaged int
	// Fetched is how many fresh events the caller's diff (from a
	// replica) added on top of the salvage.
	Fetched int
	// Events is the repaired document's history size.
	Events int
	// Salvage is the quarantine-time salvage outcome, for reporting
	// what the damage cost (zero losses when a replica's diff covered
	// everything).
	Salvage SalvageInfo
}

// Repair rebuilds a quarantined document and re-admits it: extra (a
// replica's exact summary diff; nil for single-node salvage-only
// repair) is merged into the salvaged document, then a fresh
// snapshot + empty WAL segment replace the damaged directory
// atomically. The damaged tree is kept aside as .corrupt-<name> (one
// per document) for forensics. On success the store serves reads and
// writes again.
func (s *DocStore) Repair(extra []egwalker.Event) (RepairInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return RepairInfo{}, fmt.Errorf("store: %s is closed", s.docID)
	}
	if s.qerr == nil {
		return RepairInfo{}, fmt.Errorf("store: %s is not quarantined", s.docID)
	}
	doc := s.doc
	if doc == nil {
		return RepairInfo{}, fmt.Errorf("store: %s has no salvaged document", s.docID)
	}
	salvaged := doc.NumEvents()
	if len(extra) > 0 {
		if _, err := doc.Apply(extra); err != nil {
			return RepairInfo{}, fmt.Errorf("store: repairing %s: %w", s.docID, err)
		}
	}
	info := RepairInfo{
		Salvaged: salvaged,
		Fetched:  doc.NumEvents() - salvaged,
		Events:   doc.NumEvents(),
		Salvage:  s.salvage,
	}
	if err := s.rebuildLocked(); err != nil {
		return info, fmt.Errorf("store: rebuilding %s: %w", s.docID, err)
	}
	return info, nil
}

// rebuildLocked writes the in-memory document out as a fresh
// snapshot + empty active segment in a sibling directory, then swaps
// it in under the document's name and resets the store's layout state.
// The swap is two renames; a crash between them leaves the document
// absent under its name but fully intact under .corrupt-<name>, which
// is surfaced rather than silently recreated empty. Both new renames
// get the same best-effort directory fsync the snapshot path uses.
func (s *DocStore) rebuildLocked() error {
	base := filepath.Base(s.dir)
	root := filepath.Dir(s.dir)
	tmpDir := filepath.Join(root, ".repair-"+base)
	if err := s.fs.RemoveAll(tmpDir); err != nil {
		return err
	}
	if err := s.fs.MkdirAll(tmpDir, 0o777); err != nil {
		return err
	}
	lock, err := lockDir(tmpDir)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			unlockDir(lock)
			s.fs.RemoveAll(tmpDir)
		}
	}()

	snapPath := filepath.Join(tmpDir, snapName(1))
	f, err := s.fs.OpenFile(snapPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	err = s.doc.Save(f, s.opts.Save)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	seg, err := s.fs.OpenFile(filepath.Join(tmpDir, segName(1)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	err = writeSegmentHeader(seg)
	if err == nil {
		err = seg.Sync()
	}
	if err != nil {
		seg.Close()
		return err
	}
	syncDir(tmpDir)

	aside := filepath.Join(root, ".corrupt-"+base)
	if err := s.fs.RemoveAll(aside); err != nil {
		seg.Close()
		return err
	}
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	if err := s.fs.Rename(s.dir, aside); err != nil {
		seg.Close()
		return err
	}
	if err := s.fs.Rename(tmpDir, s.dir); err != nil {
		// Put the damaged tree back under its name; the store stays
		// quarantined either way.
		s.fs.Rename(aside, s.dir)
		seg.Close()
		return err
	}
	syncDir(root)
	committed = true

	// The open fd follows the rename; so does the flock on the new
	// directory's LOCK file — exclusivity never lapses.
	unlockDir(s.lock)
	s.lock = lock
	s.active = seg
	s.activeSeq, s.snapSeq, s.firstSeg = 1, 1, 1
	s.activeSize, s.syncedSize = segHeaderLen, segHeaderLen
	s.known = nil
	s.numEvents = s.doc.NumEvents()
	s.persisted = s.doc.Version()
	s.eventsSinceSnap, s.sealedSinceSnap, s.unsyncedEvents = 0, 0, 0
	s.recovery = RecoveryInfo{SnapshotSeq: 1}
	s.werr = nil
	s.qerr = nil
	s.blockServable = snapshotServable(s.fs, filepath.Join(s.dir, snapName(1)))
	return nil
}
