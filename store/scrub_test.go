package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"egwalker"
)

// fillSegments writes enough small edits through ds to seal at least
// two WAL segments, returning the final text.
func fillSegments(t *testing.T, ds *DocStore, n int) string {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := ds.Insert(ds.Len(), fmt.Sprintf("line %d\n", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Sync(); err != nil {
		t.Fatal(err)
	}
	return ds.Text()
}

func TestScrubCleanPass(t *testing.T) {
	root := t.TempDir()
	ds := mustOpen(t, root, "clean", Options{SegmentMaxBytes: 1 << 10})
	defer ds.Close()
	fillSegments(t, ds, 100)
	rep, err := ds.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Damage) != 0 {
		t.Fatalf("clean store scrubbed dirty: %+v", rep.Damage)
	}
	if rep.Segments < 2 || rep.Bytes == 0 {
		t.Fatalf("scrub covered %d segments / %d bytes, want >= 2 segments", rep.Segments, rep.Bytes)
	}
	if q, _ := ds.Quarantined(); q {
		t.Fatal("clean scrub quarantined the store")
	}
}

// TestScrubMidSegmentQuarantineAndRepair is the heart of the tentpole
// at DocStore level: a bit flip in a sealed segment is found by the
// scrubber (not by a reopen), the document degrades to read-only
// quarantine with its full in-memory state still serving, and Repair
// swaps in a rebuilt directory that survives a cold reopen.
func TestScrubMidSegmentQuarantineAndRepair(t *testing.T) {
	root := t.TempDir()
	fs := NewFaultFS(nil)
	ds := mustOpen(t, root, "victim", Options{SegmentMaxBytes: 1 << 10, FS: fs, Quarantine: true})
	defer ds.Close()
	want := fillSegments(t, ds, 100)

	segs, err := filepath.Glob(filepath.Join(root, "victim", "wal-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d (%v)", len(segs), err)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	fs.FlipBit(segs[0], fi.Size()/2, 0x40)

	rep, err := ds.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Damage) != 1 || rep.Damage[0].Kind != DamageMidSegment {
		t.Fatalf("damage = %+v, want one mid-segment finding", rep.Damage)
	}
	q, reason := ds.Quarantined()
	if !q {
		t.Fatal("scrub found damage but did not quarantine")
	}
	if !errors.Is(ds.Insert(0, "x"), ErrQuarantined) {
		t.Fatal("quarantined store accepted a write")
	}
	if ds.Text() != want {
		t.Fatalf("quarantined read lost data: %q", ds.Text())
	}
	if _, ok := ds.CutForServe(); ok {
		t.Fatal("quarantined store offered a block cut off the damaged disk")
	}
	t.Logf("quarantine reason: %v", reason)

	// The scrubber caught it live: memory holds everything, so repair
	// needs no replica diff and loses nothing.
	fs.Clear()
	info, err := ds.Repair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Salvaged != len([]rune(want)) || info.Fetched != 0 {
		t.Fatalf("repair info %+v, want all %d events salvaged from memory", info, len(want))
	}
	if q, _ := ds.Quarantined(); q {
		t.Fatal("still quarantined after repair")
	}
	if err := ds.Insert(ds.Len(), "back\n"); err != nil {
		t.Fatalf("repaired store refused a write: %v", err)
	}
	want = ds.Text()

	// Forensics: the damaged tree is kept aside, and the rebuilt
	// directory must recover cold.
	if _, err := os.Stat(filepath.Join(root, ".corrupt-victim")); err != nil {
		t.Fatalf("damaged tree not kept aside: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, root, "victim", Options{FS: fs, Quarantine: true})
	defer re.Close()
	if q, reason := re.Quarantined(); q {
		t.Fatalf("rebuilt store quarantined on reopen: %v", reason)
	}
	if re.Text() != want {
		t.Fatalf("rebuilt store recovered %q, want %q", re.Text(), want)
	}
}

// TestServerOpenQuarantineCountsCorruptBlocks: damage discovered when a
// server opens a document (rather than by a scrub pass) still lands in
// corrupt_blocks — and exactly once, even if the quarantined document
// is reopened before repair.
func TestServerOpenQuarantineCountsCorruptBlocks(t *testing.T) {
	root := t.TempDir()
	fs := NewFaultFS(nil)
	srv, err := NewServer(root, ServerOptions{DocOptions: Options{SegmentMaxBytes: 1 << 10, FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	err = srv.With("doc-o", func(ds *DocStore) error {
		fillSegments(t, ds, 100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	segs := segPaths(t, root, "doc-o")
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	fs.FlipBit(segs[0], fi.Size()/2, 0x40)

	re, err := NewServer(root, ServerOptions{DocOptions: Options{SegmentMaxBytes: 1 << 10, FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.With("doc-o", func(ds *DocStore) error { return nil }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !re.IsQuarantined("doc-o") {
		if time.Now().After(deadline) {
			t.Fatal("open onto damaged disk did not quarantine")
		}
		time.Sleep(time.Millisecond)
	}
	first := re.MetricsSnapshot().CorruptBlocks
	if first < 1 {
		t.Fatalf("corrupt_blocks = %d after open-time quarantine, want >= 1", first)
	}
	// Force a close + reopen of the still-quarantined document: the same
	// damage is re-salvaged but must not be re-counted.
	re.mu.Lock()
	e, ok := re.open["doc-o"]
	re.mu.Unlock()
	if !ok {
		t.Fatal("doc-o not open")
	}
	re.applyEvictions(nil, []*DocStore{e.ds})
	re.mu.Lock()
	delete(re.open, "doc-o")
	re.lru.Remove(e.elem)
	re.mu.Unlock()
	if err := re.With("doc-o", func(ds *DocStore) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := re.MetricsSnapshot().CorruptBlocks; n != first {
		t.Fatalf("corrupt_blocks %d -> %d across quarantined reopen (double count)", first, n)
	}
}

// TestOpenQuarantineSalvageAndReplicaRepair is the cold-start path: the
// process restarts onto a damaged disk, comes up quarantined serving
// the salvageable prefix, and a replica's exact summary diff restores
// the rest.
func TestOpenQuarantineSalvageAndReplicaRepair(t *testing.T) {
	root := t.TempDir()
	fs := NewFaultFS(nil)
	ds := mustOpen(t, root, "cold", Options{SegmentMaxBytes: 1 << 10, FS: fs})
	want := fillSegments(t, ds, 100)
	wantEvents := ds.NumEvents()

	// A healthy "replica": same history, independent store.
	peer := mustOpen(t, t.TempDir(), "cold", Options{})
	defer peer.Close()
	all, err := ds.EventsSinceSummary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Apply(all); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(root, "cold", "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	fs.FlipBit(segs[0], fi.Size()/2, 0x40)

	re := mustOpen(t, root, "cold", Options{SegmentMaxBytes: 1 << 10, FS: fs, Quarantine: true})
	defer re.Close()
	q, _ := re.Quarantined()
	if !q {
		t.Fatal("reopen on damaged sealed segment did not quarantine")
	}
	sal := re.Salvage()
	if sal.Events >= wantEvents || sal.CorruptBlocks == 0 {
		t.Fatalf("salvage %+v, want a strict prefix with damage counted", sal)
	}
	if re.NumEvents() != sal.Events {
		t.Fatalf("serving %d events, salvage says %d", re.NumEvents(), sal.Events)
	}

	sum, err := re.Summary()
	if err != nil {
		t.Fatal(err)
	}
	diff, err := peer.EventsSinceSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	fs.Clear()
	info, err := re.Repair(diff)
	if err != nil {
		t.Fatal(err)
	}
	if info.Events != wantEvents || info.Fetched == 0 {
		t.Fatalf("repair info %+v, want %d events with a non-empty fetch", info, wantEvents)
	}
	if re.Text() != want {
		t.Fatalf("repaired text %q, want %q", re.Text(), want)
	}
	fpA, _ := re.Fingerprint()
	fpB, _ := peer.Fingerprint()
	if fpA != fpB {
		t.Fatalf("fingerprints diverge after repair: %#x vs %#x", fpA, fpB)
	}
}

// TestScrubClassifiesTornTailAndSnapshot: damage inside the active
// segment's fsynced prefix is torn-tail (silently truncatable at
// reopen — acked loss — which is why scrub must catch it); a snapshot
// that stops decoding is snapshot damage.
func TestScrubClassifiesTornTailAndSnapshot(t *testing.T) {
	t.Run("torn-tail", func(t *testing.T) {
		root := t.TempDir()
		fs := NewFaultFS(nil)
		ds := mustOpen(t, root, "tail", Options{FS: fs}) // big segments: all writes in the active one
		defer ds.Close()
		fillSegments(t, ds, 20)
		seg := filepath.Join(root, "tail", segName(1))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		fs.FlipBit(seg, fi.Size()/2, 0x20)
		rep, err := ds.Scrub(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Damage) != 1 || rep.Damage[0].Kind != DamageTornTail {
			t.Fatalf("damage = %+v, want one torn-tail finding", rep.Damage)
		}
		if q, _ := ds.Quarantined(); !q {
			t.Fatal("torn-tail damage (acked data at risk) did not quarantine")
		}
	})
	t.Run("snapshot", func(t *testing.T) {
		root := t.TempDir()
		fs := NewFaultFS(nil)
		ds := mustOpen(t, root, "snap", Options{FS: fs})
		defer ds.Close()
		fillSegments(t, ds, 20)
		if err := ds.Snapshot(); err != nil {
			t.Fatal(err)
		}
		snaps, _ := filepath.Glob(filepath.Join(root, "snap", "snap-*.egw"))
		if len(snaps) != 1 {
			t.Fatalf("want one snapshot, got %v", snaps)
		}
		fs.FlipBit(snaps[0], 0, 0xff) // break the envelope, not just content
		rep, err := ds.Scrub(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Damage) != 1 || rep.Damage[0].Kind != DamageSnapshot {
			t.Fatalf("damage = %+v, want one snapshot finding", rep.Damage)
		}
		if q, _ := ds.Quarantined(); !q {
			t.Fatal("snapshot damage did not quarantine")
		}
	})
}

// TestScrubMissingFileQuarantines: a segment the layout still relies
// on vanishing out from under the store is damage, not a compaction
// race — the liveness recheck distinguishes the two.
func TestScrubMissingFile(t *testing.T) {
	root := t.TempDir()
	fs := NewFaultFS(nil)
	ds := mustOpen(t, root, "gone", Options{SegmentMaxBytes: 1 << 10, FS: fs})
	defer ds.Close()
	fillSegments(t, ds, 100)
	segs, _ := filepath.Glob(filepath.Join(root, "gone", "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	fs.FailRead(segs[0], os.ErrNotExist)
	rep, err := ds.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Damage) != 1 || rep.Damage[0].Kind != DamageMissing {
		t.Fatalf("damage = %+v, want one missing-file finding", rep.Damage)
	}
	if q, _ := ds.Quarantined(); !q {
		t.Fatal("missing live segment did not quarantine")
	}
}

func TestScrubLimiterPacesReads(t *testing.T) {
	lim := NewScrubLimiter(1 << 20) // 1 MiB/s
	start := time.Now()
	lim.Wait(256 << 10) // 256 KiB of debt => ~250ms
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("limiter admitted 256KiB at 1MiB/s in %v", d)
	}
	// nil limiter and zero rate are unlimited.
	var nilLim *ScrubLimiter
	nilLim.Wait(1 << 30)
	NewScrubLimiter(0).Wait(1 << 30)
}

// TestServerScrubberQuarantinesAndRepairs drives the server-level
// loop: scrubPass finds the damage, the document lands in the
// quarantine set with its metrics, and RepairDoc (with a fetch closure
// standing in for the cluster's replica pull) re-admits it.
func TestServerScrubberQuarantinesAndRepairs(t *testing.T) {
	root := t.TempDir()
	fs := NewFaultFS(nil)
	var qmu sync.Mutex
	var quarantined []string
	srv, err := NewServer(root, ServerOptions{
		DocOptions: Options{SegmentMaxBytes: 1 << 10, FS: fs},
		OnQuarantine: func(docID string, reason error) {
			qmu.Lock()
			quarantined = append(quarantined, docID)
			qmu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var want string
	err = srv.With("doc-a", func(ds *DocStore) error {
		want = fillSegments(t, ds, 100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A healthy twin to pull the repair diff from.
	peer := mustOpen(t, t.TempDir(), "doc-a", Options{})
	defer peer.Close()
	err = srv.With("doc-a", func(ds *DocStore) error {
		all, err := ds.EventsSinceSummary(nil)
		if err != nil {
			return err
		}
		_, err = peer.Apply(all)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(root, "doc-a", "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	fs.FlipBit(segs[0], fi.Size()/2, 0x40)

	srv.scrubPass(nil)
	// The quarantine bookkeeping hops through a goroutine (the DocStore
	// hook fires under its mutex); wait for it to land.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.IsQuarantined("doc-a") {
		if time.Now().After(deadline) {
			t.Fatal("scrubPass did not quarantine doc-a")
		}
		time.Sleep(time.Millisecond)
	}
	m := srv.MetricsSnapshot()
	if m.ScrubPasses != 1 || m.CorruptBlocks == 0 || m.QuarantinedDocs != 1 {
		t.Fatalf("metrics after scrub: passes=%d corrupt=%d quarantined=%d",
			m.ScrubPasses, m.CorruptBlocks, m.QuarantinedDocs)
	}
	if ids := srv.QuarantinedDocIDs(); len(ids) != 1 || ids[0] != "doc-a" {
		t.Fatalf("QuarantinedDocIDs = %v", ids)
	}
	qmu.Lock()
	sawCallback := len(quarantined) > 0 && quarantined[0] == "doc-a"
	qmu.Unlock()
	if !sawCallback {
		t.Fatal("OnQuarantine callback did not fire for doc-a")
	}

	fs.Clear()
	info, err := srv.RepairDoc("doc-a", func(sum egwalker.VersionSummary) ([]egwalker.Event, error) {
		return peer.EventsSinceSummary(sum)
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Events != len([]rune(want)) {
		t.Fatalf("repair info %+v, want %d events", info, len(want))
	}
	if srv.IsQuarantined("doc-a") {
		t.Fatal("doc-a still quarantined after RepairDoc")
	}
	m = srv.MetricsSnapshot()
	if m.Repairs != 1 || m.QuarantinedDocs != 0 {
		t.Fatalf("metrics after repair: repairs=%d quarantined=%d", m.Repairs, m.QuarantinedDocs)
	}
	// And the repaired document serves writes again.
	err = srv.With("doc-a", func(ds *DocStore) error { return ds.Insert(0, "x") })
	if err != nil {
		t.Fatal(err)
	}
	// A second scrub over the rebuilt directory finds nothing.
	srv.scrubPass(nil)
	if n := srv.QuarantinedCount(); n != 0 {
		t.Fatalf("rebuilt doc re-quarantined: %d", n)
	}
}
