// Package store persists egwalker documents durably and hosts many of
// them at once: the "Smaller" side of the paper made operational. Each
// document gets a directory holding
//
//   - an append-only, segmented write-ahead log: wal-<seq>.seg files of
//     CRC-protected delta blocks (egwalker.WriteDelta — the same §3.8
//     batch encoding used on the network), rotated at a size threshold;
//   - snapshots: snap-<seq>.egw files written with Doc.Save
//     (CacheFinalDoc), where <seq> is the first WAL segment NOT covered
//     by the snapshot;
//   - compaction: once a snapshot covers them, sealed segments and
//     older snapshots are deleted.
//
// Crash recovery loads the newest loadable snapshot and replays every
// surviving WAL segment at or after it. A torn tail — a partial frame
// left by a crash mid-append — is detected (checksum mismatch or a
// block cut short, surfacing io.ErrUnexpectedEOF) and truncated away;
// replay is idempotent because Doc.Apply drops duplicate events, so a
// snapshot taken mid-segment simply re-skips what it already contains.
//
// DocStore is one durable document; Server (server.go) hosts many
// behind string document IDs with an LRU of materialized docs, batched
// fsyncs, and background compaction.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"egwalker"
)

// Segment file layout: a 5-byte header (magic + format version), then
// zero or more delta blocks appended over time.
var segMagic = [4]byte{'E', 'G', 'W', 'S'}

const (
	segVersion   = 1
	segHeaderLen = 5
)

// errBadSegment reports a file that is not a WAL segment at all (bad
// magic or unknown version) — unlike a torn tail, this is never safe to
// repair by truncation.
var errBadSegment = errors.New("store: not a WAL segment")

// writeSegmentHeader starts a fresh segment file.
func writeSegmentHeader(f File) error {
	hdr := append(append([]byte(nil), segMagic[:]...), segVersion)
	_, err := f.Write(hdr)
	return err
}

// replayResult is what scanning one segment yields.
type replayResult struct {
	batches [][]egwalker.Event
	// validLen is the byte offset after the last cleanly parsed block;
	// everything beyond it failed to parse.
	validLen int64
	// tail is non-nil when parsing stopped before the end of the file:
	// the reason the remaining bytes are unusable. A torn tail (crash
	// mid-append) surfaces io.ErrUnexpectedEOF or
	// egwalker.ErrCorruptDelta here.
	tail error
}

// replaySegment scans a segment file's delta blocks. It returns an
// error only for damage that truncation cannot repair (unreadable file,
// bad magic); per-block damage is reported via replayResult.tail so the
// caller can decide whether truncating is appropriate.
func replaySegment(fs FS, path string) (*replayResult, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return replaySegmentData(data)
}

// replaySegmentData is replaySegment over an already-read byte image.
func replaySegmentData(data []byte) (*replayResult, error) {
	if len(data) < segHeaderLen {
		// Crashing between file creation and header write leaves a short
		// file; treat as an empty segment with a torn tail.
		return &replayResult{validLen: 0, tail: fmt.Errorf("store: segment header cut short: %w", io.ErrUnexpectedEOF)}, nil
	}
	if string(data[:4]) != string(segMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", errBadSegment, data[:4])
	}
	if data[4] != segVersion {
		return nil, fmt.Errorf("%w: unknown version %d", errBadSegment, data[4])
	}
	res := &replayResult{validLen: segHeaderLen}
	rd := &countingReader{data: data, off: segHeaderLen}
	for {
		evs, err := egwalker.ReadDelta(rd)
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			res.tail = err
			return res, nil
		}
		res.batches = append(res.batches, evs)
		res.validLen = int64(rd.off)
	}
}

// blockWalk is what walking a segment's raw blocks yields — the
// payload-level mirror of replayResult.
type blockWalk struct {
	// validLen is the byte offset after the last cleanly parsed block.
	validLen int64
	// tail is non-nil when the walk stopped before the end of the data:
	// the reason the remaining bytes are unusable (same torn-tail
	// classification as replaySegment).
	tail error
}

// walkSegmentBlocks walks a segment byte image's delta-block
// envelopes, verifying each checksum and handing fn the raw payload —
// the exact batch bytes a writer journaled, without decoding them.
// This is the zero-materialization scan: block-serving and journal-
// only recovery read WAL segments through it. The payload slice
// aliases data and is only valid during the call. A non-nil error from
// fn aborts the walk and is returned verbatim; envelope damage is
// reported via blockWalk.tail instead, so callers share replay's
// torn-tail policy.
func walkSegmentBlocks(data []byte, fn func(payload []byte) error) (*blockWalk, error) {
	if len(data) < segHeaderLen {
		return &blockWalk{validLen: 0, tail: fmt.Errorf("store: segment header cut short: %w", io.ErrUnexpectedEOF)}, nil
	}
	if string(data[:4]) != string(segMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", errBadSegment, data[:4])
	}
	if data[4] != segVersion {
		return nil, fmt.Errorf("%w: unknown version %d", errBadSegment, data[4])
	}
	w := &blockWalk{validLen: segHeaderLen}
	off := segHeaderLen
	for off < len(data) {
		// Length prefix (uvarint).
		n, width := uint64(0), 0
		for shift := uint(0); ; shift += 7 {
			if off+width >= len(data) {
				w.tail = fmt.Errorf("store: torn delta length: %w", io.ErrUnexpectedEOF)
				return w, nil
			}
			if shift >= 64 {
				w.tail = fmt.Errorf("store: delta length overflow: %w", egwalker.ErrCorruptDelta)
				return w, nil
			}
			b := data[off+width]
			width++
			n |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
		}
		if n > egwalker.MaxDeltaPayload {
			w.tail = fmt.Errorf("store: delta block claims %d bytes: %w", n, egwalker.ErrCorruptDelta)
			return w, nil
		}
		blockEnd := off + width + 4 + int(n)
		if blockEnd > len(data) {
			w.tail = fmt.Errorf("store: torn delta block: %w", io.ErrUnexpectedEOF)
			return w, nil
		}
		crcOff := off + width
		payload := data[crcOff+4 : blockEnd]
		if crc32.Checksum(payload, blockCRCTable) != binary.LittleEndian.Uint32(data[crcOff:crcOff+4]) {
			w.tail = egwalker.ErrCorruptDelta
			return w, nil
		}
		if err := fn(payload); err != nil {
			return nil, err
		}
		off = blockEnd
		w.validLen = int64(off)
	}
	return w, nil
}

// blockCRCTable mirrors the delta-block checksum polynomial
// (CRC32-C, see egwalker's delta encoding).
var blockCRCTable = crc32.MakeTable(crc32.Castagnoli)

// countingReader tracks the offset so replay knows where the last good
// block ended.
type countingReader struct {
	data []byte
	off  int
}

func (r *countingReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *countingReader) ReadByte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

// tornTail reports whether a replay stopped for damage of the kind a
// crash mid-append (or tail bit rot) produces — a block cut short, a
// checksum mismatch, a mangled length prefix — which is safe to repair
// by truncating the *last* segment to validLen. A structurally
// impossible but checksummed block is not classified torn: it means a
// writer bug, and recovery refuses to silently discard it.
func tornTail(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, egwalker.ErrCorruptDelta)
}

// --- document ID <-> directory names --------------------------------------

// escapeDocID maps an arbitrary document ID to a safe directory name:
// alphanumerics, '.', '_' and '-' pass through (except leading dots);
// everything else becomes %XX. The mapping is invertible so Server can
// enumerate hosted documents from the filesystem.
func escapeDocID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.' && i > 0:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

func unescapeDocID(name string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(name) {
			return "", fmt.Errorf("store: truncated escape in %q", name)
		}
		var v int
		if _, err := fmt.Sscanf(name[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("store: bad escape in %q: %w", name, err)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}
