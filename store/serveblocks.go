package store

import (
	"fmt"
	"path/filepath"

	"egwalker"
)

// BlockCut pins a consistent on-disk view of a document for
// block-level serving: the snapshot plus the WAL segment range that
// together contain every event the store held at cut time. Take the
// cut while holding whatever ordering guarantee matters (the Server
// takes it under the same lock that orders fan-out), then stream it
// outside all locks.
type BlockCut struct {
	fs       FS
	dir      string
	snapSeq  uint64
	firstSeg uint64
	lastSeg  uint64
	lastLen  int64 // bytes of lastSeg valid at cut time
	events   int   // events the cut covers
}

// NumEvents reports how many distinct events the cut covers.
func (c *BlockCut) NumEvents() int { return c.events }

// CutForServe captures a block cut, or reports false when this store
// cannot block-serve: the snapshot is legacy-format or too large for
// one frame, a sticky write error means the WAL tail is suspect, the
// document is quarantined (never stream blocks off a damaged disk), or
// the store is closed. Callers fall back to a decoded catch-up.
func (s *DocStore) CutForServe() (*BlockCut, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.werr != nil || s.qerr != nil || !s.blockServable {
		return nil, false
	}
	n := s.numEvents
	if s.doc != nil {
		n = s.doc.NumEvents()
	}
	return &BlockCut{
		fs:       s.fs,
		dir:      s.dir,
		snapSeq:  s.snapSeq,
		firstSeg: s.firstSeg,
		lastSeg:  s.activeSeq,
		lastLen:  s.activeSize,
		events:   n,
	}, true
}

// StreamBlocks reads the cut's snapshot and WAL blocks off disk and
// hands each encoded payload to send, verbatim — the zero-
// materialization catch-up. Every payload is a complete batch frame a
// compact-capable peer decodes like any other events frame (the
// snapshot is one payload; each WAL block is one payload, either
// encoding). Returns the number of payloads sent; on error the stream
// may be partial, and the caller should fall back to a decoded
// catch-up — receivers deduplicate, so a partial stream followed by a
// full snapshot still converges. Concurrent compaction may delete a
// cut's files mid-stream; that surfaces here as an error, not
// corruption.
func (s *DocStore) StreamBlocks(cut *BlockCut, send func(payload []byte) error) (int, error) {
	sent := 0
	if cut.snapSeq > 0 {
		data, err := cut.fs.ReadFile(filepath.Join(cut.dir, snapName(cut.snapSeq)))
		if err != nil {
			return sent, err
		}
		if !egwalker.IsCompactBatch(data) || int64(len(data)) > egwalker.MaxDeltaPayload {
			return sent, fmt.Errorf("store: snapshot %s not servable as a frame", snapName(cut.snapSeq))
		}
		if err := send(data); err != nil {
			return sent, err
		}
		sent++
	}
	for seq := cut.firstSeg; seq <= cut.lastSeg; seq++ {
		path := filepath.Join(cut.dir, segName(seq))
		data, err := cut.fs.ReadFile(path)
		if err != nil {
			return sent, err
		}
		if seq == cut.lastSeg && int64(len(data)) > cut.lastLen {
			// The active segment grew past the cut; newer blocks reach
			// the peer through live fan-out instead.
			data = data[:cut.lastLen]
		}
		w, err := walkSegmentBlocks(data, func(payload []byte) error {
			if err := send(payload); err != nil {
				return err
			}
			sent++
			return nil
		})
		if err != nil {
			return sent, err
		}
		if w.tail != nil {
			return sent, fmt.Errorf("store: segment %s: %w", path, w.tail)
		}
	}
	return sent, nil
}
