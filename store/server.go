package store

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"egwalker"
	"egwalker/netsync"
)

// ServerOptions tune a multi-document host.
type ServerOptions struct {
	// MaxOpenDocs caps how many documents stay materialized in memory
	// (default 64): the LRU cache of full egwalker.Docs layered over
	// the much larger population of journal-only open documents.
	// Beyond it, the least-recently-used idle document sheds its
	// in-memory doc (the journal and live subscriptions keep working);
	// it re-materializes on demand. Documents with in-flight work are
	// never shed.
	MaxOpenDocs int
	// MaxJournalDocs caps how many documents stay open at all (default
	// 1024). A journal-only document costs two file descriptors and a
	// small ID index, so this cap can sit orders of magnitude above
	// MaxOpenDocs; beyond it, the least-recently-used idle document is
	// synced and fully closed. Values below MaxOpenDocs are raised to
	// it.
	MaxJournalDocs int
	// FlushInterval is the group-commit cadence (default 50ms): appends
	// return after the OS write, and a background flusher fsyncs every
	// open document's WAL on this interval — one fsync absorbs any
	// number of appends. Negative means fsync on every commit
	// (strongest durability, lowest throughput).
	FlushInterval time.Duration
	// SnapshotEvery triggers background compaction once a document has
	// journaled that many events since its last snapshot (default
	// 8192; 0 disables automatic compaction).
	SnapshotEvery int
	// Agent names the server's replicas (default "server"). Servers
	// never edit, so the name only matters for debugging.
	Agent string
	// DocOptions are passed to each document's DocStore.
	DocOptions Options
	// Logf, when set, receives operational warnings the background
	// loops cannot return to a caller (fsync failures, compaction
	// failures, resume degradation). Point it at log.Printf in a
	// server binary.
	Logf func(format string, args ...any)
	// OnIngest, when set, is called after a batch from a client or the
	// API (never from a server-to-server replica link) is accepted with
	// at least one new event — the cluster replication tap: the cluster
	// node forwards the batch to the document's other replicas. raw is
	// the uploader's encoded payload (nil for API appends). Called with
	// the document's fan-out lock held, so it must not block; enqueue
	// and return.
	OnIngest func(docID string, events []egwalker.Event, raw []byte)
	// ScrubEvery, when > 0, runs a background integrity scrub over every
	// hosted document on that interval: sealed WAL segments and the
	// active segment's fsynced prefix are re-verified block by block
	// (CRC32-C), snapshots are re-decoded, and damage quarantines the
	// document (read-only salvaged prefix, no writes) until RepairDoc
	// rebuilds it.
	ScrubEvery time.Duration
	// ScrubBytesPerSec paces scrub reads (default 8 MiB/s; < 0
	// unlimited) so a scrub pass never competes with the live path.
	ScrubBytesPerSec int64
	// OnQuarantine, when set, is notified (on its own goroutine) each
	// time a document transitions into quarantine — the cluster node's
	// repair trigger.
	OnQuarantine func(docID string, reason error)
	// HandshakeTimeout bounds how long ServeConn waits for a client's
	// hello frame (default 10s; < 0 disables): an accepted connection
	// that never says anything must not pin a goroutine forever.
	HandshakeTimeout time.Duration
	// OutboxBytesPerPeer caps how many queued fan-out bytes one
	// subscriber may buffer (default 1 MiB). A peer over the cap has its
	// queue coalesced (adjacent batches merged and re-marshalled); if it
	// is still over, the peer is severed and reconnects with a resume
	// hello. The old 256-frame channel bounded nothing in bytes; this
	// makes per-connection memory a budget, which is what lets one
	// server hold 10k+ subscribers without a slow minority owning the
	// heap.
	OutboxBytesPerPeer int64
	// OutboxBytesTotal caps queued fan-out bytes across every
	// subscriber of every document (default 256 MiB) — the server-wide
	// backstop that bounds RSS no matter how many peers go slow at
	// once. The live total is the outbox_bytes gauge.
	OutboxBytesTotal int64
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxOpenDocs <= 0 {
		o.MaxOpenDocs = 64
	}
	if o.MaxJournalDocs <= 0 {
		o.MaxJournalDocs = 1024
	}
	if o.MaxJournalDocs < o.MaxOpenDocs {
		o.MaxJournalDocs = o.MaxOpenDocs
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 50 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 8192
	}
	if o.Agent == "" {
		o.Agent = "server"
	}
	if o.FlushInterval < 0 {
		o.DocOptions.SyncEveryCommit = true
	}
	if o.ScrubBytesPerSec == 0 {
		o.ScrubBytesPerSec = 8 << 20
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.OutboxBytesPerPeer <= 0 {
		o.OutboxBytesPerPeer = 1 << 20
	}
	if o.OutboxBytesTotal <= 0 {
		o.OutboxBytesTotal = 256 << 20
	}
	if o.OutboxBytesTotal < o.OutboxBytesPerPeer {
		o.OutboxBytesTotal = o.OutboxBytesPerPeer
	}
	// A hosted document that turns out corrupt comes up quarantined
	// (salvaged prefix served read-only) instead of unopenable: the
	// server always has the repair machinery on hand.
	o.DocOptions.Quarantine = true
	return o
}

// closeDrainTimeout bounds how long Close waits for in-flight
// connections and appends to release their documents before closing
// the stores anyway.
const closeDrainTimeout = 5 * time.Second

// peerSub is one live subscriber of a document: its byte-budgeted
// outbox of marshalled batches, the connection behind it (kept so the
// sever path can close the transport immediately — a writer blocked
// mid-send on a stalled peer would otherwise never observe its outbox
// closing), and whether the peer advertised the compact encoding.
type peerSub struct {
	ob      *outbox
	conn    io.ReadWriter
	compact bool
}

// entry is one open document plus its connected peers. ds is nil until
// ready is closed (the document is still being opened by the goroutine
// that created the entry); openErr records a failed open. The document
// behind ds is usually journal-only; mat mirrors whether it currently
// holds a materialized doc (maintained by the DocStore's
// materialization hooks, readable without any lock).
type entry struct {
	id       string
	ready    chan struct{}
	openErr  error
	ds       *DocStore
	m        *Metrics
	logf     func(format string, args ...any)
	onIngest func(docID string, events []egwalker.Event, raw []byte)
	mat      atomic.Bool
	// mu serializes ingest+fanout against catch-up cuts and subscribe,
	// so a joining peer misses no events between its catch-up and its
	// first forwarded batch.
	mu       sync.Mutex
	peers    map[int]peerSub
	nextPeer int
	// obPeer/obTotal are the outbox byte budgets, copied from the
	// server's options at acquire so subscribe needs no back-pointer.
	obPeer  int64
	obTotal int64

	refs       int
	elem       *list.Element
	compacting bool
}

// Server hosts many durable documents behind string doc IDs: the
// paper's relay server grown a database. One Server owns one store
// root directory; connections multiplex by document via the netsync
// doc-ID hello frame (ServeConn). Open documents are journal-only by
// default — write-mostly documents are hosted without ever building
// their egwalker.Doc — and an LRU keeps only the documents that needed
// materializing (text queries, legacy catch-ups, resume diffs,
// compaction) in memory.
type Server struct {
	mu      sync.Mutex
	root    string
	opts    ServerOptions
	metrics *Metrics
	started time.Time
	open    map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	// quarantined tracks which documents are currently quarantined, by
	// reason. Maintained across evictions and reopens (the DocStore's
	// onQuarantine hook re-adds on reopen; RepairDoc removes).
	quarantined map[string]error

	compactCh chan *entry
	done      chan struct{}
	wg        sync.WaitGroup
	closed    bool
}

// NewServer opens (creating if needed) a store root directory and
// starts the background flusher and compactor.
func NewServer(root string, opts ServerOptions) (*Server, error) {
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, err
	}
	s := &Server{
		root:        root,
		opts:        opts.withDefaults(),
		metrics:     &Metrics{},
		started:     time.Now(),
		open:        make(map[string]*entry),
		lru:         list.New(),
		quarantined: make(map[string]error),
		compactCh:   make(chan *entry, 64),
		done:        make(chan struct{}),
	}
	s.wg.Add(2)
	go s.flusher()
	go s.compactor()
	if s.opts.ScrubEvery > 0 {
		s.wg.Add(1)
		go s.scrubber()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// acquire pins the document's entry, opening it (journal-only when
// possible) if it is not open. The disk work happens outside the
// server lock — a cold open of one large document must not stall
// appends to every other document — with an opening latch so
// concurrent acquires of the same document share one open. Callers
// must release.
func (s *Server) acquire(docID string) (*entry, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: server closed")
	}
	if e, ok := s.open[docID]; ok {
		e.refs++
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		if e.openErr != nil {
			s.release(e)
			return nil, e.openErr
		}
		return e, nil
	}
	e := &entry{id: docID, ready: make(chan struct{}), peers: make(map[int]peerSub), m: s.metrics, logf: s.logf, onIngest: s.opts.OnIngest, obPeer: s.opts.OutboxBytesPerPeer, obTotal: s.opts.OutboxBytesTotal, refs: 1}
	e.elem = s.lru.PushFront(e)
	s.open[docID] = e
	s.metrics.OpenDocs.Set(int64(len(s.open)))
	s.mu.Unlock()

	// The materialization hooks keep the entry's mat flag and the
	// server's materialized-population metrics exact, whether the doc
	// materializes during open (journal scan fell back), on demand, or
	// is shed by eviction or close. They fire under the DocStore's
	// mutex and touch only atomics.
	docOpts := s.opts.DocOptions
	docOpts.onMaterialize = func(d time.Duration) {
		e.mat.Store(true)
		s.metrics.MaterializedDocs.Add(1)
		s.metrics.LazyMaterializations.Inc()
		s.metrics.MaterializeNs.Observe(d.Nanoseconds())
	}
	docOpts.onDematerialize = func() {
		e.mat.Store(false)
		s.metrics.MaterializedDocs.Add(-1)
	}
	// Both hooks fire under the DocStore's mutex; quarantine
	// bookkeeping needs the server lock, so it hops to a goroutine
	// (Close holds s.mu while closing stores — taking s.mu here would
	// invert that order).
	docOpts.onQuarantine = func(reason error) {
		go s.noteQuarantine(docID, reason)
	}
	docOpts.onDegrade = func(err error) {
		s.metrics.WALWriteErrors.Inc()
	}

	// A just-evicted store for this document may still be fsync-closing
	// (eviction closes outside the server lock); its directory flock
	// clears momentarily, so retry briefly rather than failing.
	wasQuarantined := s.IsQuarantined(docID)
	start := time.Now()
	var ds *DocStore
	var err error
	for attempt := 0; ; attempt++ {
		ds, err = OpenLazy(s.root, docID, s.opts.Agent, docOpts)
		if err == nil || !errors.Is(err, ErrLocked) || attempt >= 100 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Open-time salvage damage counts toward corrupt_blocks exactly
	// once — a reopen of a document already in the quarantine set
	// re-salvages the same damage and must not count it again.
	if err == nil && !wasQuarantined {
		if q, _ := ds.Quarantined(); q {
			if n := ds.Salvage().CorruptBlocks; n > 0 {
				s.metrics.CorruptBlocks.Add(int64(n))
			}
		}
	}

	s.mu.Lock()
	if err == nil && s.closed {
		ds.Close()
		ds, err = nil, fmt.Errorf("store: server closed")
	}
	if err != nil {
		e.openErr = err
		delete(s.open, docID)
		s.lru.Remove(e.elem)
		s.metrics.OpenDocs.Set(int64(len(s.open)))
		s.mu.Unlock()
		close(e.ready)
		return nil, err
	}
	e.ds = ds
	s.metrics.ColdOpens.Inc()
	s.metrics.OpenNs.Observe(time.Since(start).Nanoseconds())
	demat, victims := s.evictLocked()
	s.mu.Unlock()
	close(e.ready)
	s.applyEvictions(demat, victims)
	return e, nil
}

func (s *Server) release(e *entry) {
	s.mu.Lock()
	e.refs--
	demat, victims := s.evictLocked()
	s.mu.Unlock()
	s.applyEvictions(demat, victims)
}

// evictLocked picks eviction work and returns it for the caller to
// perform after dropping s.mu (dematerializing syncs, closing fsyncs —
// disk work must not stall the whole server). Two tiers: documents
// holding a materialized doc beyond MaxOpenDocs are dematerialized
// (LRU-idle first; each is pinned so it cannot be closed underneath
// the demat); documents open beyond MaxJournalDocs are fully closed
// and unlinked. Pinned documents are skipped, so both populations may
// transiently exceed their caps.
func (s *Server) evictLocked() (demat []*entry, victims []*DocStore) {
	over := s.metrics.MaterializedDocs.Load() - int64(s.opts.MaxOpenDocs)
	if over > 0 {
		for el := s.lru.Back(); el != nil && over > 0; el = el.Prev() {
			if e := el.Value.(*entry); e.refs == 0 && e.ds != nil && e.mat.Load() {
				e.refs++ // released by applyEvictions
				demat = append(demat, e)
				over--
			}
		}
	}
	for s.lru.Len() > s.opts.MaxJournalDocs {
		var victim *entry
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*entry); e.refs == 0 && e.ds != nil {
				victim = e
				break
			}
		}
		if victim == nil {
			break
		}
		s.lru.Remove(victim.elem)
		delete(s.open, victim.id)
		victims = append(victims, victim.ds)
	}
	if n := len(demat) + len(victims); n > 0 {
		s.metrics.Evictions.Add(int64(n))
		s.metrics.OpenDocs.Set(int64(len(s.open)))
	}
	return demat, victims
}

// applyEvictions performs eviction work outside s.mu: closes fully
// evicted stores and dematerializes cache-evicted ones. A document
// that refuses to dematerialize (buffered causal gap, sticky write
// error) is fully closed instead — exactly what the old
// whole-document eviction did to it.
func (s *Server) applyEvictions(demat []*entry, victims []*DocStore) {
	for _, ds := range victims {
		ds.Close()
	}
	for _, e := range demat {
		if err := e.ds.Dematerialize(); err != nil {
			s.mu.Lock()
			if e.refs == 1 { // only our pin: safe to unlink and close
				s.lru.Remove(e.elem)
				delete(s.open, e.id)
				s.metrics.OpenDocs.Set(int64(len(s.open)))
				e.refs--
				s.mu.Unlock()
				e.ds.Close()
				continue
			}
			// Someone re-acquired meanwhile; leave it materialized.
			e.refs--
			s.mu.Unlock()
			continue
		}
		s.release(e) // may demat/close the next-colder entry
	}
}

// OpenCount reports how many documents currently hold a materialized
// in-memory doc — the LRU cache's population. See JournalCount for
// the full open population.
func (s *Server) OpenCount() int {
	return int(s.metrics.MaterializedDocs.Load())
}

// JournalCount reports how many documents are open at all, including
// journal-only ones.
func (s *Server) JournalCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}

// With runs fn against the (pinned) document, opening it if needed.
// The document may be journal-only; DocStore methods that need the
// in-memory doc materialize it on demand.
func (s *Server) With(docID string, fn func(*DocStore) error) error {
	e, err := s.acquire(docID)
	if err != nil {
		return err
	}
	defer s.release(e)
	return fn(e.ds)
}

// Append merges events into the document, journals them, and fans them
// out to any peers connected to it.
func (s *Server) Append(docID string, events []egwalker.Event) error {
	e, err := s.acquire(docID)
	if err != nil {
		return err
	}
	defer s.release(e)
	return e.ingest(events, nil, -1, false)
}

// IngestReplica merges a batch received over a cluster replication
// link: events are journaled (raw verbatim when provided) and fanned
// out to local subscribers, but the OnIngest replication tap does not
// fire — replicated data is never re-forwarded, which is what keeps
// the cluster's origin-push topology loop-free.
func (s *Server) IngestReplica(docID string, events []egwalker.Event, raw []byte) error {
	e, err := s.acquire(docID)
	if err != nil {
		return err
	}
	defer s.release(e)
	if err := e.ingest(events, raw, -1, true); err != nil {
		return err
	}
	e.m.ReplicaBatchesIn.Inc()
	e.m.ReplicaEventsIn.Add(int64(len(events)))
	return nil
}

// Text returns the document's current text, materializing it if
// needed.
func (s *Server) Text(docID string) (string, error) {
	var text string
	err := s.With(docID, func(ds *DocStore) error {
		if err := ds.Materialize(); err != nil {
			return err
		}
		text = ds.Text()
		return nil
	})
	return text, err
}

// DocIDs lists every document the store root holds, open or not.
func (s *Server) DocIDs() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		// Dot-prefixed directories are never documents (escapeDocID
		// escapes leading dots): .repair-* is an in-flight rebuild,
		// .corrupt-* a damaged tree kept aside for forensics.
		if strings.HasPrefix(ent.Name(), ".") {
			continue
		}
		id, err := unescapeDocID(ent.Name())
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// ingest journals a batch and forwards it to every peer except the
// sender, building per-capability payloads: a peer gets the uploader's
// raw bytes verbatim only when it can decode them — compact-encoded
// uploads are re-marshalled (lazily, once per batch) for peers that
// never advertised the compact encoding. raw may be nil (API appends).
// replica marks a batch arriving over a server-to-server replication
// link: it still fans out to local subscribers, but never fires the
// OnIngest tap — the origin node already pushed it to every replica,
// and re-forwarding replicated batches would echo them around the
// cluster forever.
func (e *entry) ingest(events []egwalker.Event, raw []byte, fromPeer int, replica bool) error {
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	fresh, err := e.ds.IngestBatch(events, raw)
	if err != nil {
		return err
	}
	if fresh > 0 && !replica && e.onIngest != nil {
		e.onIngest(e.id, events, raw)
	}
	// ApplyNs from call entry, so per-document lock contention (many
	// writers on one hot document) shows up in the latency it causes.
	e.m.ApplyNs.Observe(time.Since(start).Nanoseconds())
	e.m.EventsApplied.Add(int64(len(events)))
	e.m.BatchesApplied.Inc()
	e.m.FanoutBatchEvents.Observe(int64(len(events)))
	return e.fanoutLocked(events, raw, fromPeer)
}

// fanoutLocked forwards a batch to every subscriber except fromPeer
// (-1: all). Called with e.mu held; also used by RepairDoc to push a
// repair's fetched diff to live subscribers.
func (e *entry) fanoutLocked(events []egwalker.Event, raw []byte, fromPeer int) error {
	// Verbatim forwarding is the zero-copy default; only a compact
	// payload headed for a legacy peer needs the re-marshal (a legacy
	// payload is the common decodable-by-everyone denominator).
	rawCompact := raw != nil && egwalker.IsCompactBatch(raw)
	var verbatim [][]byte
	if raw != nil {
		verbatim = [][]byte{raw}
	}
	var legacyChunks [][]byte
	legacyPayloads := func() ([][]byte, error) {
		if legacyChunks == nil {
			var err error
			legacyChunks, err = netsync.MarshalChunks(events)
			if err != nil {
				return nil, err
			}
		}
		return legacyChunks, nil
	}

	for pid, p := range e.peers {
		if pid == fromPeer {
			continue
		}
		raws := verbatim
		evs := events
		if raws == nil || (rawCompact && !p.compact) {
			var err error
			raws, err = legacyPayloads()
			if err != nil {
				return err
			}
		}
		e.m.OutboxDepth.Observe(int64(p.ob.depth()))
		if !p.ob.push(raws, evs) {
			// Slow peer: over its byte budget even after coalescing, so
			// it would silently miss these events forever (the live
			// protocol has no anti-entropy). Sever it instead; the
			// client reconnects with a resume hello and catches up
			// incrementally.
			e.severLocked(pid)
		}
	}
	return nil
}

// severLocked disconnects one subscriber: removes it from the peer
// map, drops its queued outbox (waking and ending its writer), and
// closes the transport so a writer stalled mid-send and the peer's
// reader both unblock. Called with e.mu held. Guarded on map
// membership so racing sever paths (fan-out overflow vs. a connection
// close already in flight) account the peer exactly once.
func (e *entry) severLocked(pid int) {
	p, ok := e.peers[pid]
	if !ok {
		return
	}
	delete(e.peers, pid)
	p.ob.close(true)
	severConn(p.conn)
	e.m.PeersSevered.Inc()
	e.m.Subscribers.Add(-1)
}

// subPlan is what subscribe hands ServeConn: the peer's registration
// plus its catch-up, which is either a block cut (stream encoded
// frames verbatim off disk — the zero-materialization path) or a
// decoded event batch.
type subPlan struct {
	id     int
	outbox *outbox
	cut    *BlockCut
	events []egwalker.Event
}

// subscribe registers a peer and plans its catch-up: nothing ingested
// after the cut escapes the outbox, so the peer sees every event
// exactly once. A summary hello gets the exact diff — correct even
// when this server lacks some of the peer's events, so it never
// resends history. A legacy resume hello presenting a non-empty
// version gets the known-subset diff (materializing if needed); when
// the version named events this server lacks, the answer re-sends
// history the client already had, which is counted as a resume
// fallback so operators see legacy clients paying the reconnect tax.
// A failed diff degrades to a cold join. Cold joins by compact peers
// stream the document's encoded blocks without materializing it;
// everything else gets the decoded full history.
func (e *entry) subscribe(conn io.ReadWriter, h netsync.Hello) (*subPlan, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextPeer
	e.nextPeer++
	outbox := newOutbox(e.obPeer, e.obTotal, &e.m.OutboxBytes, &e.m.CoalescedFrames, h.Compact)
	e.peers[id] = peerSub{ob: outbox, conn: conn, compact: h.Compact}
	e.m.Subscribers.Add(1)
	if len(h.Summary) > 0 {
		catchup, err := e.ds.EventsSinceSummary(h.Summary)
		if err == nil {
			e.m.SummaryResumes.Inc()
			e.m.Resumes.Inc()
			e.m.ResumeEvents.Add(int64(len(catchup)))
			return &subPlan{id: id, outbox: outbox, events: catchup}, nil
		}
		e.m.ResumeFallbacks.Inc()
		e.logf("store: summary resume for %q degraded to full catch-up: %v", e.id, err)
	} else if h.Resume && len(h.Version) > 0 {
		catchup, dropped, err := e.ds.EventsSinceKnownLossy(h.Version)
		if err == nil {
			if dropped > 0 {
				// The frontier named events we lack: the diff anchored
				// below them and re-sends history the client already
				// has. Correct but wasteful — the lost-information case
				// the summary hello exists to eliminate.
				e.m.ResumeFallbacks.Inc()
				e.logf("store: legacy resume for %q dropped %d unknown heads, re-sending covered history", e.id, dropped)
			}
			e.m.Resumes.Inc()
			e.m.ResumeEvents.Add(int64(len(catchup)))
			return &subPlan{id: id, outbox: outbox, events: catchup}, nil
		}
		// An unresolvable version cannot anchor a diff; degrade to a
		// full catch-up, which is always correct — but say so, because
		// a fleet of clients silently re-downloading full histories is
		// a resume regression an operator needs to see.
		e.m.ResumeFallbacks.Inc()
		e.logf("store: resume for %q degraded to full catch-up: %v", e.id, err)
	}
	if h.Compact {
		if cut, ok := e.ds.CutForServe(); ok {
			e.m.BlockServes.Inc()
			e.m.BlockServeEvents.Add(int64(cut.NumEvents()))
			return &subPlan{id: id, outbox: outbox, cut: cut}, nil
		}
	}
	snapshot, err := e.ds.EventsSince(nil)
	if err != nil {
		// No catch-up can be built (materialization failed); undo the
		// registration — this connection is unusable.
		delete(e.peers, id)
		outbox.close(true)
		e.m.Subscribers.Add(-1)
		return nil, err
	}
	e.m.FullSnapshots.Inc()
	e.m.SnapshotEvents.Add(int64(len(snapshot)))
	return &subPlan{id: id, outbox: outbox, events: snapshot}, nil
}

// severConn force-closes a peer connection when the transport supports
// it, unblocking any read pending on it.
func severConn(conn io.ReadWriter) {
	if c, ok := conn.(io.Closer); ok {
		c.Close()
	}
}

func (e *entry) unsubscribe(id int) {
	e.mu.Lock()
	p, ok := e.peers[id]
	delete(e.peers, id)
	if ok {
		e.m.Subscribers.Add(-1)
	}
	e.mu.Unlock()
	if ok {
		// Graceful close: the writer drains what is already queued
		// before exiting. A peer severed earlier is gone from the map,
		// so this path cannot double-account it.
		p.ob.close(false)
	}
}

// ServeConn handles one client connection: it reads the doc-ID hello
// frame naming which hosted document the peer wants, sends the
// catch-up history (everything, or — when the hello presents a resume
// version — only the events the peer is missing), and thereafter
// journals and fans out every batch the peer uploads —
// netsync.Relay semantics, multiplexed over every document in the
// store and durable across restarts.
//
// A v2 hello advertising the compact columnar encoding changes what a
// cold join costs the server: the catch-up is streamed as the
// document's encoded blocks (snapshot frame + WAL blocks) verbatim off
// disk, without materializing the document at all. Legacy peers get
// the decoded history. Run ServeConn in its own goroutine per
// connection; it returns when the peer disconnects.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	// A peer that connects and never speaks must not pin this goroutine
	// forever: the hello read gets a deadline when the transport has
	// one, cleared once the handshake completes (the live stream is
	// allowed to idle indefinitely).
	d, hasDeadline := conn.(readDeadliner)
	if hasDeadline && s.opts.HandshakeTimeout > 0 {
		d.SetReadDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	}
	h, err := netsync.ReadHello(conn)
	if err != nil {
		return err
	}
	if hasDeadline && s.opts.HandshakeTimeout > 0 {
		d.SetReadDeadline(time.Time{})
	}
	return s.ServeHello(conn, h)
}

// readDeadliner is the slice of net.Conn the handshake timeout needs.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// ServeHello is ServeConn after the doc hello has already been read —
// the entry point for routers (cluster nodes) that parse the hello
// themselves to decide whether this server owns the document before
// handing the connection over. A hello flagged as a replica link gets
// the server-to-server treatment: a version exchange instead of a
// fan-out subscription (see serveReplica).
func (s *Server) ServeHello(conn io.ReadWriter, h netsync.Hello) error {
	s.metrics.ConnCount.Add(1)
	defer s.metrics.ConnCount.Add(-1)
	if h.Replica {
		return s.serveReplica(conn, h)
	}
	pc := netsync.NewPeerConn(conn)
	e, err := s.acquire(h.DocID)
	if err != nil {
		return err
	}
	defer s.release(e)

	plan, err := e.subscribe(conn, h)
	if err != nil {
		return err
	}
	defer e.unsubscribe(plan.id)
	compact := h.Compact

	switch {
	case plan.cut != nil:
		if err := e.streamCatchup(pc, plan.cut, compact); err != nil {
			return err
		}
	case compact:
		if err := pc.SendEventsCompact(plan.events); err != nil {
			return err
		}
	default:
		if err := pc.SendEvents(plan.events); err != nil {
			return err
		}
	}

	writeErr := make(chan error, 1)
	go func() {
		for {
			raws, ok := plan.outbox.drain()
			if !ok {
				// Outbox closed and empty: normal teardown, or the peer
				// was dropped as too slow (ingest). Sever the connection
				// so a Recv blocked on an idle diverged client unblocks
				// and the client reconnects for a fresh snapshot.
				writeErr <- nil
				severConn(conn)
				return
			}
			// Everything queued ships as one writev-style burst: the
			// frames hit the wire under a single flush instead of one
			// syscall each — the difference between 10k writers making
			// progress and 10k writers thrashing the scheduler.
			if err := pc.SendRawBatch(raws); err != nil {
				writeErr <- err
				// Frames queued after this point can never be sent;
				// drop them so the global byte ledger is released now,
				// not when unsubscribe eventually runs.
				plan.outbox.close(true)
				severConn(conn)
				return
			}
		}
	}()

	for {
		select {
		case err := <-writeErr:
			return err
		default:
		}
		events, raw, done, err := pc.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if done {
			return nil
		}
		if err := e.ingest(events, raw, plan.id, false); err != nil {
			return err
		}
	}
}

// streamCatchup sends a block cut's frames to a joining compact peer,
// falling back to the decoded full history if the stream breaks
// (concurrent compaction can delete a cut's files mid-stream; the peer
// deduplicates whatever blocks already arrived).
func (e *entry) streamCatchup(pc *netsync.PeerConn, cut *BlockCut, compact bool) error {
	sent, serr := e.ds.StreamBlocks(cut, pc.SendRaw)
	if serr == nil {
		if sent == 0 {
			// Empty document: the contract is that the first events
			// frame is the snapshot, even when empty.
			return pc.SendEventsCompact(nil)
		}
		return nil
	}
	e.logf("store: block catch-up for %q fell back to decoded events after %d frames: %v", e.id, sent, serr)
	snapshot, err := e.ds.EventsSince(nil)
	if err != nil {
		return serr
	}
	e.m.FullSnapshots.Inc()
	e.m.SnapshotEvents.Add(int64(len(snapshot)))
	if compact {
		return pc.SendEventsCompact(snapshot)
	}
	return pc.SendEvents(snapshot)
}

// serveReplica handles a server-to-server replication link: the peer
// node presented its version (or, on summary-capable links, its
// run-length version summary); we answer in kind, followed by the
// events the peer is missing (so the link establishes a full
// bidirectional anti-entropy round — the peer pushes back what we are
// missing, netsync.Sync's exchange embedded in the relay protocol).
// Thereafter the peer pushes batches its clients upload (journaled and
// fanned out to our local subscribers, but never re-replicated — the
// origin pushes to every replica itself) and may initiate fresh
// version exchanges on a timer, which converge a lagging side from its
// journal without full retransfer.
func (s *Server) serveReplica(conn io.ReadWriter, h netsync.Hello) error {
	pc := netsync.NewPeerConn(conn)
	e, err := s.acquire(h.DocID)
	if err != nil {
		return err
	}
	defer s.release(e)
	if err := e.replicaExchange(pc, h.Version, h.Summary, h.Compact); err != nil {
		return err
	}
	for {
		f, err := pc.RecvFrame()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch f.Kind {
		case netsync.FrameEvents:
			if err := e.ingest(f.Events, f.Raw, -1, true); err != nil {
				return err
			}
			e.m.ReplicaBatchesIn.Inc()
			e.m.ReplicaEventsIn.Add(int64(len(f.Events)))
		case netsync.FrameVersion:
			if err := e.replicaExchange(pc, f.Version, nil, h.Compact); err != nil {
				return err
			}
		case netsync.FrameSummary:
			if err := e.replicaExchange(pc, nil, f.Summary, h.Compact); err != nil {
				return err
			}
		case netsync.FrameDone:
			return nil
		default:
			return fmt.Errorf("store: replica link for %q: unexpected frame kind %d", h.DocID, f.Kind)
		}
	}
}

// replicaExchange answers one anti-entropy round on a replica link:
// send our state (a summary when the peer sent one, its frontier
// version otherwise), then the events the peer is missing. The
// summary path is exact in both directions — the peer's event set is
// fully described, so nothing it holds is re-sent, and it can compute
// an exact push-back from our summary; when both sides are converged
// a journal-only document answers without materializing at all. On
// the legacy path our state is captured before the catch-up, so it
// can only understate what the catch-up carries — the peer's
// push-back is then a superset of what we lack, and ingest
// deduplicates.
func (e *entry) replicaExchange(pc *netsync.PeerConn, theirs egwalker.Version, theirSummary egwalker.VersionSummary, compact bool) error {
	var catchup []egwalker.Event
	if theirSummary != nil {
		ours, err := e.ds.Summary()
		if err != nil {
			return err
		}
		if catchup, err = e.ds.EventsSinceSummary(theirSummary); err != nil {
			return err
		}
		if err := pc.SendSummary(ours); err != nil {
			return err
		}
	} else {
		ours := e.ds.Version()
		var err error
		if catchup, err = e.ds.EventsSinceKnown(theirs); err != nil {
			return err
		}
		if err := pc.SendVersion(ours); err != nil {
			return err
		}
	}
	e.m.ReplicaExchanges.Inc()
	e.m.ReplicaEventsOut.Add(int64(len(catchup)))
	if compact {
		return pc.SendEventsCompact(catchup)
	}
	return pc.SendEvents(catchup)
}

// Healthz reports whether this server can currently accept and persist
// writes: it is not closed and its store root is writable (a probe
// file is created, synced, and removed). The egserve /healthz endpoint
// and cluster fail-over probes are built on it.
func (s *Server) Healthz() error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("store: server closed")
	}
	probe := filepath.Join(s.root, ".healthz")
	f, err := os.OpenFile(probe, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("store: root not writable: %w", err)
	}
	_, werr := f.Write([]byte("ok"))
	serr := f.Sync()
	cerr := f.Close()
	os.Remove(probe)
	for _, err := range []error{werr, serr, cerr} {
		if err != nil {
			return fmt.Errorf("store: root not writable: %w", err)
		}
	}
	return nil
}

// noteQuarantine records a document's transition into quarantine and
// notifies the OnQuarantine listener. Runs on its own goroutine (the
// DocStore hook fires under the store mutex).
func (s *Server) noteQuarantine(docID string, reason error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	_, known := s.quarantined[docID]
	s.quarantined[docID] = reason
	s.metrics.QuarantinedDocs.Set(int64(len(s.quarantined)))
	s.mu.Unlock()
	if !known {
		s.logf("store: quarantined %q: %v", docID, reason)
	}
	if s.opts.OnQuarantine != nil {
		s.opts.OnQuarantine(docID, reason)
	}
}

func (s *Server) noteRepaired(docID string) {
	s.mu.Lock()
	delete(s.quarantined, docID)
	s.metrics.QuarantinedDocs.Set(int64(len(s.quarantined)))
	s.mu.Unlock()
}

// IsQuarantined reports whether the document is currently quarantined.
func (s *Server) IsQuarantined(docID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.quarantined[docID]
	return ok
}

// QuarantinedDocIDs lists the currently quarantined documents — what a
// cluster node's repair loop re-enqueues every anti-entropy tick.
func (s *Server) QuarantinedDocIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.quarantined))
	for id := range s.quarantined {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// QuarantinedCount reports how many documents are quarantined — the
// degraded-health signal egserve's /healthz surfaces.
func (s *Server) QuarantinedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.quarantined)
}

// RepairDoc rebuilds a quarantined document and re-admits it. fetch,
// when non-nil, is handed the salvaged prefix's version summary and
// must return the exact diff from a live replica (the events the
// summary does not cover); nil fetch performs a salvage-only repair —
// single-node operation keeps the valid prefix and the loss is
// reported in the returned RepairInfo. On success the repaired diff is
// fanned out to the document's live subscribers and the quarantine
// flag clears.
func (s *Server) RepairDoc(docID string, fetch func(egwalker.VersionSummary) ([]egwalker.Event, error)) (RepairInfo, error) {
	e, err := s.acquire(docID)
	if err != nil {
		return RepairInfo{}, err
	}
	defer s.release(e)
	if q, _ := e.ds.Quarantined(); !q {
		return RepairInfo{}, fmt.Errorf("store: %s is not quarantined", docID)
	}
	var extra []egwalker.Event
	if fetch != nil {
		sum, err := e.ds.Summary()
		if err != nil {
			return RepairInfo{}, err
		}
		if extra, err = fetch(sum); err != nil {
			s.metrics.RepairFailures.Inc()
			return RepairInfo{}, fmt.Errorf("store: repair fetch for %s: %w", docID, err)
		}
	}
	// Repair and fan-out under the entry lock, so a subscriber joining
	// mid-repair either sees the repaired history in its catch-up or
	// receives the diff through its outbox — never neither.
	e.mu.Lock()
	info, err := e.ds.Repair(extra)
	if err != nil {
		e.mu.Unlock()
		s.metrics.RepairFailures.Inc()
		return info, err
	}
	if len(extra) > 0 {
		if ferr := e.fanoutLocked(extra, nil, -1); ferr != nil {
			s.logf("store: fanning out repair diff for %q: %v", docID, ferr)
		}
	}
	e.mu.Unlock()
	s.metrics.Repairs.Inc()
	s.metrics.RepairEvents.Add(int64(info.Fetched))
	s.noteRepaired(docID)
	s.logf("store: repaired %q: %d salvaged + %d fetched events (lost: %d blocks, %d bytes)",
		docID, info.Salvaged, info.Fetched, info.Salvage.CorruptBlocks, info.Salvage.LostBytes)
	return info, nil
}

// scrubber is the background integrity loop: every ScrubEvery it walks
// all hosted documents and re-verifies their on-disk state, paced by a
// shared byte budget. Damage quarantines the document via the
// DocStore's hook, which feeds OnQuarantine (the cluster repair path).
func (s *Server) scrubber() {
	defer s.wg.Done()
	lim := NewScrubLimiter(s.opts.ScrubBytesPerSec)
	t := time.NewTicker(s.opts.ScrubEvery)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.scrubPass(lim)
		}
	}
}

func (s *Server) scrubPass(lim *ScrubLimiter) {
	ids, err := s.DocIDs()
	if err != nil {
		s.logf("store: scrub pass: %v", err)
		return
	}
	for _, id := range ids {
		select {
		case <-s.done:
			return
		default:
		}
		e, err := s.acquire(id)
		if err != nil {
			s.logf("store: scrub open %q: %v", id, err)
			continue
		}
		rep, err := e.ds.Scrub(lim)
		s.metrics.ScrubBytes.Add(rep.Bytes)
		if len(rep.Damage) > 0 {
			s.metrics.CorruptBlocks.Add(int64(len(rep.Damage)))
			for _, d := range rep.Damage {
				s.logf("store: scrub %q: %s damage in %s at %d: %v", id, d.Kind, d.File, d.Off, d.Err)
			}
		}
		if err != nil {
			s.logf("store: scrub %q: %v", id, err)
		}
		s.release(e)
	}
	s.metrics.ScrubPasses.Inc()
}

// flusher is the group-commit loop: one fsync per open document per
// interval, amortizing durability across every append in the window.
// It runs even when FlushInterval is negative (per-commit fsync mode,
// where Sync below is a no-op) because it is also what feeds
// compaction pressure to the background compactor.
func (s *Server) flusher() {
	defer s.wg.Done()
	interval := s.opts.FlushInterval
	if interval < 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	// Outbox depths are also sampled on every fan-out send, but a send
	// that never happens samples nothing: an idle-but-full outbox (the
	// writer stalled, no new ingest on that document) was invisible.
	// Piggyback a periodic sweep on the flusher, roughly once a second.
	sampleEvery := int(time.Second / interval)
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	for ticks := 0; ; {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.flushOnce()
			if ticks++; ticks%sampleEvery == 0 {
				s.sampleOutboxes()
			}
		}
	}
}

// sampleOutboxes records every live subscriber's outbox depth, so
// queues that are deep but quiescent still show up in OutboxDepth.
func (s *Server) sampleOutboxes() {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.open))
	for _, e := range s.open {
		if e.ds == nil {
			continue // still opening
		}
		e.refs++
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		for _, p := range e.peers {
			s.metrics.OutboxDepth.Observe(int64(p.ob.depth()))
		}
		e.mu.Unlock()
		s.release(e)
	}
}

func (s *Server) flushOnce() {
	s.mu.Lock()
	var pinned []*entry
	for _, e := range s.open {
		if e.ds == nil {
			continue // still opening
		}
		e.refs++
		pinned = append(pinned, e)
	}
	s.mu.Unlock()
	for _, e := range pinned {
		// A failed fsync turns the DocStore fail-stop (sticky write
		// error); surface it here too so the operator learns before the
		// next append bounces.
		// Drain the commit counter before the fsync so the batch size
		// reflects what this fsync makes durable (events landing during
		// the fsync are attributed to the next window).
		batch := e.ds.TakeUnsyncedEvents()
		start := time.Now()
		err := e.ds.Sync()
		s.metrics.FsyncNs.Observe(time.Since(start).Nanoseconds())
		if err != nil {
			s.metrics.FsyncErrors.Inc()
			s.logf("store: fsync %q: %v", e.id, err)
		} else if batch > 0 && !s.opts.DocOptions.SyncEveryCommit {
			// In per-commit-fsync mode every commit fsyncs itself and
			// Sync here is a no-op: the amortization is 1 by
			// construction, so recording the window total would invert
			// the signal.
			s.metrics.CommitBatchEvents.Observe(int64(batch))
		}
		if s.opts.SnapshotEvery > 0 && e.ds.UnsnapshottedEvents() >= s.opts.SnapshotEvery {
			s.scheduleCompact(e) // takes its own pin
		}
		s.release(e)
	}
}

// scheduleCompact hands a document to the background compactor, at
// most one outstanding request per document.
func (s *Server) scheduleCompact(e *entry) {
	s.mu.Lock()
	if s.closed || e.compacting {
		s.mu.Unlock()
		return
	}
	e.compacting = true
	e.refs++
	s.mu.Unlock()
	select {
	case s.compactCh <- e:
	default:
		// Compactor saturated; retry next flush. The rollback goes
		// through release so the unpin runs eviction like any other —
		// an inline refs-- here once left over-cap documents pinned
		// until some unrelated release happened by.
		s.mu.Lock()
		e.compacting = false
		s.mu.Unlock()
		s.release(e)
	}
}

func (s *Server) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case e := <-s.compactCh:
			start := time.Now()
			if err := e.ds.Compact(); err != nil {
				s.logf("store: compacting %q: %v", e.id, err)
			} else {
				s.metrics.Compactions.Inc()
				s.metrics.CompactNs.Observe(time.Since(start).Nanoseconds())
			}
			s.mu.Lock()
			e.compacting = false
			s.mu.Unlock()
			s.release(e)
		}
	}
}

// Close stops the background loops, severs live peer connections, and
// — after in-flight work has drained (bounded wait) — syncs and
// closes every open document. Closing a store out from under an
// in-flight Apply was a real race; Close now waits for every pin to
// release (severed connections release theirs promptly) before
// touching the stores.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()

	// Queued compactions each hold a pin the stopped compactor will
	// never release.
drainQueue:
	for {
		select {
		case e := <-s.compactCh:
			s.mu.Lock()
			e.compacting = false
			e.refs--
			s.mu.Unlock()
		default:
			break drainQueue
		}
	}
drain:
	for deadline := time.Now().Add(closeDrainTimeout); ; {
		s.mu.Lock()
		busy := 0
		for _, e := range s.open {
			if e.refs > 0 {
				busy++
			}
			e.mu.Lock()
			for _, p := range e.peers {
				severConn(p.conn)
			}
			e.mu.Unlock()
		}
		s.mu.Unlock()
		if busy == 0 || time.Now().After(deadline) {
			break drain
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for _, e := range s.open {
		if e.ds == nil {
			continue // in-flight opener observes s.closed and cleans up
		}
		if e.refs > 0 {
			s.logf("store: closing %q with %d refs still held", e.id, e.refs)
		}
		if cerr := e.ds.Close(); err == nil {
			err = cerr
		}
	}
	s.open = map[string]*entry{}
	s.lru.Init()
	s.metrics.OpenDocs.Set(0)
	return err
}
