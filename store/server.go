package store

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"egwalker"
	"egwalker/netsync"
)

// ServerOptions tune a multi-document host.
type ServerOptions struct {
	// MaxOpenDocs caps how many documents stay materialized in memory
	// (default 64). Beyond it, the least-recently-used idle document is
	// synced, closed, and evicted; reopening replays snapshot + WAL
	// tail on demand. Documents with live connections are never
	// evicted.
	MaxOpenDocs int
	// FlushInterval is the group-commit cadence (default 50ms): appends
	// return after the OS write, and a background flusher fsyncs every
	// open document's WAL on this interval — one fsync absorbs any
	// number of appends. Negative means fsync on every commit
	// (strongest durability, lowest throughput).
	FlushInterval time.Duration
	// SnapshotEvery triggers background compaction once a document has
	// journaled that many events since its last snapshot (default
	// 8192; 0 disables automatic compaction).
	SnapshotEvery int
	// Agent names the server's replicas (default "server"). Servers
	// never edit, so the name only matters for debugging.
	Agent string
	// DocOptions are passed to each document's DocStore.
	DocOptions Options
	// Logf, when set, receives operational warnings the background
	// loops cannot return to a caller (fsync failures, compaction
	// failures). Point it at log.Printf in a server binary.
	Logf func(format string, args ...any)
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxOpenDocs <= 0 {
		o.MaxOpenDocs = 64
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 50 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 8192
	}
	if o.Agent == "" {
		o.Agent = "server"
	}
	if o.FlushInterval < 0 {
		o.DocOptions.SyncEveryCommit = true
	}
	return o
}

// peerSub is one live subscriber of a document: its outbox of
// marshalled batches and the connection behind it, kept so the sever
// path can close the transport immediately (a writer blocked mid-send
// on a stalled peer would otherwise never observe its outbox closing).
type peerSub struct {
	ch   chan []byte
	conn io.ReadWriter
}

// entry is one materialized document plus its connected peers. ds is
// nil until ready is closed (the document is still being materialized
// by the goroutine that created the entry); openErr records a failed
// materialization.
type entry struct {
	id      string
	ready   chan struct{}
	openErr error
	ds      *DocStore
	m       *Metrics
	// mu serializes apply+fanout against snapshot+subscribe, so a
	// joining peer misses no events between its snapshot and its first
	// forwarded batch.
	mu       sync.Mutex
	peers    map[int]peerSub
	nextPeer int

	refs       int
	elem       *list.Element
	compacting bool
}

// Server hosts many durable documents behind string doc IDs: the
// paper's relay server grown a database. One Server owns one store
// root directory; connections multiplex by document via the netsync
// doc-ID hello frame (ServeConn), and an LRU keeps only hot documents
// materialized.
type Server struct {
	mu      sync.Mutex
	root    string
	opts    ServerOptions
	metrics *Metrics
	open    map[string]*entry
	lru     *list.List // front = most recently used; values are *entry

	compactCh chan *entry
	done      chan struct{}
	wg        sync.WaitGroup
	closed    bool
}

// NewServer opens (creating if needed) a store root directory and
// starts the background flusher and compactor.
func NewServer(root string, opts ServerOptions) (*Server, error) {
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, err
	}
	s := &Server{
		root:      root,
		opts:      opts.withDefaults(),
		metrics:   &Metrics{},
		open:      make(map[string]*entry),
		lru:       list.New(),
		compactCh: make(chan *entry, 64),
		done:      make(chan struct{}),
	}
	s.wg.Add(2)
	go s.flusher()
	go s.compactor()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// acquire pins the document's entry, materializing it (snapshot + WAL
// replay) if it is not open. The disk work happens outside the server
// lock — a cold open of one large document must not stall appends to
// every other document — with an opening latch so concurrent acquires
// of the same document share one materialization. Callers must
// release.
func (s *Server) acquire(docID string) (*entry, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: server closed")
	}
	if e, ok := s.open[docID]; ok {
		e.refs++
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		if e.openErr != nil {
			s.release(e)
			return nil, e.openErr
		}
		return e, nil
	}
	e := &entry{id: docID, ready: make(chan struct{}), peers: make(map[int]peerSub), m: s.metrics, refs: 1}
	e.elem = s.lru.PushFront(e)
	s.open[docID] = e
	s.metrics.OpenDocs.Set(int64(len(s.open)))
	s.mu.Unlock()

	// A just-evicted store for this document may still be fsync-closing
	// (eviction closes outside the server lock); its directory flock
	// clears momentarily, so retry briefly rather than failing.
	start := time.Now()
	var ds *DocStore
	var err error
	for attempt := 0; ; attempt++ {
		ds, err = Open(s.root, docID, s.opts.Agent, s.opts.DocOptions)
		if err == nil || !errors.Is(err, ErrLocked) || attempt >= 100 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	s.mu.Lock()
	if err == nil && s.closed {
		ds.Close()
		ds, err = nil, fmt.Errorf("store: server closed")
	}
	if err != nil {
		e.openErr = err
		delete(s.open, docID)
		s.lru.Remove(e.elem)
		s.metrics.OpenDocs.Set(int64(len(s.open)))
		s.mu.Unlock()
		close(e.ready)
		return nil, err
	}
	e.ds = ds
	s.metrics.ColdOpens.Inc()
	s.metrics.OpenNs.Observe(time.Since(start).Nanoseconds())
	victims := s.evictLocked()
	s.mu.Unlock()
	close(e.ready)
	closeVictims(victims)
	return e, nil
}

func (s *Server) release(e *entry) {
	s.mu.Lock()
	e.refs--
	victims := s.evictLocked()
	s.mu.Unlock()
	closeVictims(victims)
}

// evictLocked unlinks least-recently-used idle documents until the LRU
// cap is met and returns their stores; the caller closes them after
// dropping s.mu (Close fsyncs, and a disk sync must not stall the
// whole server). Pinned documents (live connections, in-flight work)
// are skipped, so the map may transiently exceed the cap.
func (s *Server) evictLocked() []*DocStore {
	var victims []*DocStore
	for s.lru.Len() > s.opts.MaxOpenDocs {
		var victim *entry
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*entry); e.refs == 0 && e.ds != nil {
				victim = e
				break
			}
		}
		if victim == nil {
			break
		}
		s.lru.Remove(victim.elem)
		delete(s.open, victim.id)
		victims = append(victims, victim.ds)
	}
	if len(victims) > 0 {
		s.metrics.Evictions.Add(int64(len(victims)))
		s.metrics.OpenDocs.Set(int64(len(s.open)))
	}
	return victims
}

// closeVictims syncs and closes evicted stores; the documents remain
// recoverable on disk.
func closeVictims(victims []*DocStore) {
	for _, ds := range victims {
		ds.Close()
	}
}

// OpenCount reports how many documents are currently materialized.
func (s *Server) OpenCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}

// With runs fn against the (pinned) document, materializing it if
// needed.
func (s *Server) With(docID string, fn func(*DocStore) error) error {
	e, err := s.acquire(docID)
	if err != nil {
		return err
	}
	defer s.release(e)
	return fn(e.ds)
}

// Append merges events into the document, journals them, and fans them
// out to any peers connected to it.
func (s *Server) Append(docID string, events []egwalker.Event) error {
	e, err := s.acquire(docID)
	if err != nil {
		return err
	}
	defer s.release(e)
	return e.applyAndFanout(events, nil, -1)
}

// Text returns the document's current text, materializing it if
// needed.
func (s *Server) Text(docID string) (string, error) {
	var text string
	err := s.With(docID, func(ds *DocStore) error {
		text = ds.Text()
		return nil
	})
	return text, err
}

// DocIDs lists every document the store root holds, open or not.
func (s *Server) DocIDs() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		id, err := unescapeDocID(ent.Name())
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// applyAndFanout journals a batch and forwards the raw payload to
// every peer except the sender. raw may be nil (API appends); it is
// then re-marshalled in frame-sized chunks.
func (e *entry) applyAndFanout(events []egwalker.Event, raw []byte, fromPeer int) error {
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.ds.Apply(events); err != nil {
		return err
	}
	// ApplyNs from call entry, so per-document lock contention (many
	// writers on one hot document) shows up in the latency it causes.
	e.m.ApplyNs.Observe(time.Since(start).Nanoseconds())
	e.m.EventsApplied.Add(int64(len(events)))
	e.m.BatchesApplied.Inc()
	e.m.FanoutBatchEvents.Observe(int64(len(events)))
	var raws [][]byte
	if raw != nil {
		raws = [][]byte{raw}
	} else {
		var err error
		raws, err = netsync.MarshalChunks(events)
		if err != nil {
			return err
		}
	}
	for pid, p := range e.peers {
		if pid == fromPeer {
			continue
		}
		for _, b := range raws {
			e.m.OutboxDepth.Observe(int64(len(p.ch)))
			select {
			case p.ch <- b:
			default:
				// Slow peer: its outbox is full, so it would silently
				// miss these events forever (the live protocol has no
				// anti-entropy). Sever it instead — closing the outbox
				// ends its writer, and closing the connection unblocks
				// a writer stalled mid-send (and the peer's reader);
				// the client reconnects with a resume hello and
				// catches up incrementally.
				delete(e.peers, pid)
				close(p.ch)
				severConn(p.conn)
				e.m.PeersSevered.Inc()
				e.m.Subscribers.Add(-1)
			}
			if _, ok := e.peers[pid]; !ok {
				break
			}
		}
	}
	return nil
}

// subscribe registers a peer and returns its ID, outbox, and the
// catch-up events to send it first: nothing applied after the cut
// escapes the outbox, so the peer sees every event exactly once. With
// resume set, the catch-up is the document's events since the peer's
// presented version (incremental resume); otherwise it is the full
// history.
func (e *entry) subscribe(conn io.ReadWriter, since egwalker.Version, resume bool) (int, chan []byte, []egwalker.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextPeer
	e.nextPeer++
	outbox := make(chan []byte, 256)
	e.peers[id] = peerSub{ch: outbox, conn: conn}
	e.m.Subscribers.Add(1)
	if resume {
		catchup, err := e.ds.EventsSinceKnown(since)
		if err == nil {
			e.m.Resumes.Inc()
			e.m.ResumeEvents.Add(int64(len(catchup)))
			return id, outbox, catchup
		}
		// An unresolvable version cannot anchor a diff; fall back to
		// the full history, which is always correct.
	}
	snapshot := e.ds.Events()
	e.m.FullSnapshots.Inc()
	e.m.SnapshotEvents.Add(int64(len(snapshot)))
	return id, outbox, snapshot
}

// severConn force-closes a peer connection when the transport supports
// it, unblocking any read pending on it.
func severConn(conn io.ReadWriter) {
	if c, ok := conn.(io.Closer); ok {
		c.Close()
	}
}

func (e *entry) unsubscribe(id int) {
	e.mu.Lock()
	p, ok := e.peers[id]
	delete(e.peers, id)
	if ok {
		e.m.Subscribers.Add(-1)
	}
	e.mu.Unlock()
	if ok {
		close(p.ch)
	}
}

// ServeConn handles one client connection: it reads the doc-ID hello
// frame naming which hosted document the peer wants, sends the catch-up
// history (everything, or — when the hello presents a resume version —
// only the events the peer is missing), and thereafter journals and
// fans out every batch the peer uploads — netsync.Relay semantics,
// multiplexed over every document in the store and durable across
// restarts. A v2 hello advertising the compact columnar encoding gets
// its snapshot/catch-up in that format — the bulk of a cold join's
// bytes — while fan-out frames stay on the shared legacy payloads every
// peer understands. Run it in its own goroutine per connection; it
// returns when the peer disconnects.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	docID, since, resume, compact, err := netsync.ReadDocHelloAny(conn)
	if err != nil {
		return err
	}
	pc := netsync.NewPeerConn(conn)
	e, err := s.acquire(docID)
	if err != nil {
		return err
	}
	defer s.release(e)

	id, outbox, catchup := e.subscribe(conn, since, resume)
	defer e.unsubscribe(id)

	sendCatchup := pc.SendEvents
	if compact {
		sendCatchup = pc.SendEventsCompact
	}
	if err := sendCatchup(catchup); err != nil {
		return err
	}

	writeErr := make(chan error, 1)
	go func() {
		for b := range outbox {
			if err := pc.SendRaw(b); err != nil {
				writeErr <- err
				severConn(conn)
				return
			}
		}
		// Outbox closed: normal teardown, or the peer was dropped as
		// too slow (applyAndFanout). Sever the connection so a Recv
		// blocked on an idle diverged client unblocks and the client
		// reconnects for a fresh snapshot.
		writeErr <- nil
		severConn(conn)
	}()

	for {
		select {
		case err := <-writeErr:
			return err
		default:
		}
		events, raw, done, err := pc.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if done {
			return nil
		}
		if err := e.applyAndFanout(events, raw, id); err != nil {
			return err
		}
	}
}

// flusher is the group-commit loop: one fsync per open document per
// interval, amortizing durability across every append in the window.
// It runs even when FlushInterval is negative (per-commit fsync mode,
// where Sync below is a no-op) because it is also what feeds
// compaction pressure to the background compactor.
func (s *Server) flusher() {
	defer s.wg.Done()
	interval := s.opts.FlushInterval
	if interval < 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.flushOnce()
		}
	}
}

func (s *Server) flushOnce() {
	s.mu.Lock()
	var pinned []*entry
	for _, e := range s.open {
		if e.ds == nil {
			continue // still materializing
		}
		e.refs++
		pinned = append(pinned, e)
	}
	s.mu.Unlock()
	for _, e := range pinned {
		// A failed fsync turns the DocStore fail-stop (sticky write
		// error); surface it here too so the operator learns before the
		// next append bounces.
		// Drain the commit counter before the fsync so the batch size
		// reflects what this fsync makes durable (events landing during
		// the fsync are attributed to the next window).
		batch := e.ds.TakeUnsyncedEvents()
		start := time.Now()
		err := e.ds.Sync()
		s.metrics.FsyncNs.Observe(time.Since(start).Nanoseconds())
		if err != nil {
			s.metrics.FsyncErrors.Inc()
			s.logf("store: fsync %q: %v", e.id, err)
		} else if batch > 0 && !s.opts.DocOptions.SyncEveryCommit {
			// In per-commit-fsync mode every commit fsyncs itself and
			// Sync here is a no-op: the amortization is 1 by
			// construction, so recording the window total would invert
			// the signal.
			s.metrics.CommitBatchEvents.Observe(int64(batch))
		}
		if s.opts.SnapshotEvery > 0 && e.ds.UnsnapshottedEvents() >= s.opts.SnapshotEvery {
			s.scheduleCompact(e) // takes its own pin
		}
		s.release(e)
	}
}

// scheduleCompact hands a document to the background compactor, at
// most one outstanding request per document.
func (s *Server) scheduleCompact(e *entry) {
	s.mu.Lock()
	if s.closed || e.compacting {
		s.mu.Unlock()
		return
	}
	e.compacting = true
	e.refs++
	s.mu.Unlock()
	select {
	case s.compactCh <- e:
	default: // compactor saturated; retry next flush
		s.mu.Lock()
		e.compacting = false
		e.refs--
		s.mu.Unlock()
	}
}

func (s *Server) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case e := <-s.compactCh:
			start := time.Now()
			if err := e.ds.Compact(); err != nil {
				s.logf("store: compacting %q: %v", e.id, err)
			} else {
				s.metrics.Compactions.Inc()
				s.metrics.CompactNs.Observe(time.Since(start).Nanoseconds())
			}
			s.mu.Lock()
			e.compacting = false
			s.mu.Unlock()
			s.release(e)
		}
	}
}

// Close stops the background loops and syncs and closes every open
// document.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for _, e := range s.open {
		if e.ds == nil {
			continue // in-flight opener observes s.closed and cleans up
		}
		if cerr := e.ds.Close(); err == nil {
			err = cerr
		}
	}
	s.open = map[string]*entry{}
	s.lru.Init()
	s.metrics.OpenDocs.Set(0)
	return err
}
