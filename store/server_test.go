package store

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"egwalker"
	"egwalker/netsync"
)

func newTestServer(t *testing.T, opts ServerOptions) *Server {
	t.Helper()
	srv, err := NewServer(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestServerLRUEvictionReopen: host well over the LRU cap, write
// distinct content to every document, and verify (a) the cap holds,
// (b) every document — including every evicted one — reopens from disk
// with its exact content, and (c) cold reopen in a fresh server sees
// all of them.
func TestServerLRUEvictionReopen(t *testing.T) {
	const docs = 120
	const cap = 8
	root := t.TempDir()
	srv, err := NewServer(root, ServerOptions{MaxOpenDocs: cap, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, docs)
	for i := 0; i < docs; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		text := fmt.Sprintf("document %d body: %s", i, id)
		err := srv.With(id, func(ds *DocStore) error { return ds.Insert(0, text) })
		if err != nil {
			t.Fatal(err)
		}
		want[id] = text
		if n := srv.OpenCount(); n > cap {
			t.Fatalf("after %d docs: %d materialized, cap %d", i+1, n, cap)
		}
	}
	// Touch every doc again: each read of an evicted doc is a
	// recovery-from-disk.
	for id, text := range want {
		got, err := srv.Text(id)
		if err != nil {
			t.Fatalf("Text(%q): %v", id, err)
		}
		if got != text {
			t.Fatalf("doc %q after eviction: %q, want %q", id, got, text)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart: a brand-new server over the same root.
	srv2, err := NewServer(root, ServerOptions{MaxOpenDocs: cap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ids, err := srv2.DocIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != docs {
		t.Fatalf("cold server lists %d docs, want %d", len(ids), docs)
	}
	for _, id := range ids {
		got, err := srv2.Text(id)
		if err != nil || got != want[id] {
			t.Fatalf("cold reopen %q: %q (%v), want %q", id, got, err, want[id])
		}
	}
}

// TestServeConnMultiplex: one listener, several documents, several
// clients per document — each client converges on its document and
// never sees another document's events; everything survives a server
// restart.
func TestServeConnMultiplex(t *testing.T) {
	root := t.TempDir()
	srv, err := NewServer(root, ServerOptions{FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				srv.ServeConn(conn)
			}()
		}
	}()

	type client struct {
		doc  *egwalker.Doc
		c    *netsync.Client
		conn net.Conn
	}
	dial := func(docID, agent string) *client {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		doc := egwalker.NewDoc(agent)
		c, err := netsync.NewClientForDoc(doc, conn, docID)
		if err != nil {
			t.Fatal(err)
		}
		return &client{doc: doc, c: c, conn: conn}
	}

	docIDs := []string{"notes/alpha", "notes/beta", "notes/gamma"}
	texts := map[string]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, docID := range docIDs {
		wg.Add(1)
		go func(docID string) {
			defer wg.Done()
			a := dial(docID, docID+"-a")
			b := dial(docID, docID+"-b")
			defer a.conn.Close()
			defer b.conn.Close()
			// a types; b receives.
			payload := "contents of " + docID
			for i, r := range payload {
				if err := a.doc.Insert(i, string(r)); err != nil {
					t.Error(err)
					return
				}
			}
			evs := a.doc.Events()
			if err := a.c.Push(evs); err != nil {
				t.Error(err)
				return
			}
			for b.doc.Len() < len(payload) {
				if _, err := b.c.Receive(); err != nil {
					t.Errorf("%s: receive: %v", docID, err)
					return
				}
			}
			if b.doc.Text() != payload {
				t.Errorf("%s: b got %q", docID, b.doc.Text())
				return
			}
			mu.Lock()
			texts[docID] = payload
			mu.Unlock()
		}(docID)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Give the flusher a beat, then restart the server and check every
	// document recovered.
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(root, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for _, docID := range docIDs {
		got, err := srv2.Text(docID)
		if err != nil {
			t.Fatal(err)
		}
		if got != texts[docID] {
			t.Fatalf("restarted server: %q = %q, want %q", docID, got, texts[docID])
		}
	}
}

// TestServeConnLateJoiner: a client connecting after edits happened
// receives the full history as its snapshot.
func TestServeConnLateJoiner(t *testing.T) {
	srv := newTestServer(t, ServerOptions{FlushInterval: -1})
	seed := egwalker.NewDoc("early")
	if err := seed.Insert(0, "already here"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Append("late-doc", seed.Events()); err != nil {
		t.Fatal(err)
	}

	cs, ss := net.Pipe()
	defer cs.Close()
	go func() {
		defer ss.Close()
		srv.ServeConn(ss)
	}()
	doc := egwalker.NewDoc("late")
	c, err := netsync.NewClientForDoc(doc, cs, "late-doc")
	if err != nil {
		t.Fatal(err)
	}
	for doc.Len() < seed.Len() {
		if _, err := c.Receive(); err != nil {
			t.Fatal(err)
		}
	}
	if doc.Text() != "already here" {
		t.Fatalf("late joiner got %q", doc.Text())
	}
	c.Close()
}

// TestServerBackgroundCompaction: enough events through the server
// trigger the flusher -> compactor pipeline without any explicit call.
func TestServerBackgroundCompaction(t *testing.T) {
	srv := newTestServer(t, ServerOptions{
		FlushInterval: time.Millisecond,
		SnapshotEvery: 100,
	})
	for i := 0; i < 40; i++ {
		err := srv.With("busy", func(ds *DocStore) error {
			return ds.Insert(0, "0123456789")
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var snapBytes int64
		srv.With("busy", func(ds *DocStore) error {
			snapBytes, _, _ = ds.DiskUsage()
			return nil
		})
		if snapBytes > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background compaction never produced a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
