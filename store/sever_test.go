package store

import (
	"fmt"
	"net"
	"testing"
	"time"

	"egwalker"
	"egwalker/netsync"
)

// TestSlowSubscriberSeverAndResume is the regression test for the
// slow-peer sever policy: when one subscriber stops draining its
// outbox, that subscriber alone is severed — other peers keep
// receiving every event — and the severed client reconverges by
// reconnecting with an incremental resume instead of a full snapshot.
func TestSlowSubscriberSeverAndResume(t *testing.T) {
	// The per-peer outbox budget is sized around the legacy encoding's
	// ~9-10 bytes per single-char insert: the 100 events B drains while
	// alive can never overrun it even if they all queue at once
	// (~1 KiB), while the 300-event backlog after B stalls (~2.7 KiB,
	// and coalescing legacy frames barely compresses) reliably does.
	srv := newTestServer(t, ServerOptions{FlushInterval: time.Millisecond, OutboxBytesPerPeer: 2048})
	const docID = "sever-doc"
	const totalEvents = 400
	const stallAt = 100

	// B: the peer that will go slow. Connects first; reads a while,
	// then stops draining.
	bcs, bss := net.Pipe()
	defer bcs.Close()
	serveOne(t, srv, bss)
	bdoc := egwalker.NewDoc("b")
	bpc := netsync.NewPeerConn(bcs)
	if err := bpc.SendDocHello(docID); err != nil {
		t.Fatal(err)
	}

	// A: a healthy peer that drains promptly.
	acs, ass := net.Pipe()
	defer acs.Close()
	serveOne(t, srv, ass)
	adoc := egwalker.NewDoc("a")
	apc := netsync.NewPeerConn(acs)
	if err := apc.SendDocHello(docID); err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	go func() {
		for adoc.NumEvents() < totalEvents {
			evs, _, done, err := apc.Recv()
			if err != nil || done {
				aDone <- fmt.Errorf("a: done=%v err=%v at %d events", done, err, adoc.NumEvents())
				return
			}
			if _, err := adoc.Apply(evs); err != nil {
				aDone <- err
				return
			}
		}
		aDone <- nil
	}()

	// C: the writer, uploading one single-event batch at a time so the
	// slow peer's outbox fills batch by batch. C must read its (empty)
	// initial snapshot frame first — net.Pipe is unbuffered.
	ccs, css := net.Pipe()
	defer ccs.Close()
	serveOne(t, srv, css)
	cdoc := egwalker.NewDoc("c")
	cpc := netsync.NewPeerConn(ccs)
	if err := cpc.SendDocHello(docID); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cpc.Recv(); err != nil {
		t.Fatal(err)
	}
	// C writes in two phases: stallAt events while B drains, then —
	// only once B has gone silent — the rest. The pause makes the
	// sever deterministic: without it C could finish before B stalls,
	// and a backlog that stops growing never overflows the budget
	// (severing happens on push).
	bStalled := make(chan struct{})
	cErr := make(chan error, 1)
	go func() {
		for i := 0; i < totalEvents; i++ {
			if i == stallAt {
				<-bStalled
			}
			pre := cdoc.Version()
			if err := cdoc.Insert(cdoc.Len(), "x"); err != nil {
				cErr <- err
				return
			}
			evs, err := cdoc.EventsSince(pre)
			if err == nil {
				err = cpc.SendEvents(evs)
			}
			if err != nil {
				cErr <- err
				return
			}
		}
		cErr <- nil
	}()

	// B drains the first stallAt events, then goes silent.
	for bdoc.NumEvents() < stallAt {
		evs, _, done, err := bpc.Recv()
		if err != nil || done {
			t.Fatalf("b: done=%v err=%v at %d events", done, err, bdoc.NumEvents())
		}
		if _, err := bdoc.Apply(evs); err != nil {
			t.Fatal(err)
		}
	}
	close(bStalled)

	if err := <-cErr; err != nil {
		t.Fatalf("writer: %v", err)
	}
	// The healthy peer must receive everything despite B stalling.
	if err := <-aDone; err != nil {
		t.Fatalf("healthy peer starved: %v", err)
	}
	if adoc.Text() != cdoc.Text() {
		t.Fatal("healthy peer diverged")
	}

	// B alone must have been severed (its outbox filled), and the
	// sever must close B's connection so its next read fails rather
	// than blocking forever.
	deadline := time.Now().Add(5 * time.Second)
	for srv.MetricsSnapshot().PeersSevered == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow peer never severed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := srv.MetricsSnapshot().PeersSevered; n != 1 {
		t.Fatalf("%d peers severed, want only the slow one", n)
	}
	bcs.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, _, err := bpc.Recv(); err == nil {
		// Drain anything buffered before the sever; the connection
		// must still die promptly.
		for {
			if _, _, _, err := bpc.Recv(); err != nil {
				break
			}
		}
	}

	// B reconverges via incremental resume: the catch-up carries
	// exactly the events B is missing, not the full history.
	before := bdoc.NumEvents()
	if before >= totalEvents {
		t.Fatalf("setup: slow peer already has all %d events", before)
	}
	rcs, rss := net.Pipe()
	defer rcs.Close()
	serveOne(t, srv, rss)
	rpc := netsync.NewPeerConn(rcs)
	if err := rpc.SendDocHelloResume(docID, bdoc.Version()); err != nil {
		t.Fatal(err)
	}
	got := recvInto(t, rpc, bdoc, totalEvents)
	if want := totalEvents - before; got != want {
		t.Fatalf("resume shipped %d events, want %d (full snapshot would be %d)", got, want, totalEvents)
	}
	if bdoc.Text() != cdoc.Text() {
		t.Fatal("severed peer failed to reconverge")
	}
}
