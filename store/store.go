package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"egwalker"
)

// ErrLocked reports a document directory already open by another
// DocStore (usually another process; also a concurrent evicted store
// whose close has not finished).
var ErrLocked = errors.New("store: document directory is locked by another store")

// compactWALThreshold is the batch size from which journaled delta
// blocks switch to the compact columnar payload: below it the columnar
// header outweighs its run-length savings, above it runs dominate.
const compactWALThreshold = 8

// Options tune one durable document.
type Options struct {
	// SegmentMaxBytes is the WAL rotation threshold (default 1 MiB): a
	// commit that pushes the active segment past it seals the segment
	// and starts a new one.
	SegmentMaxBytes int64
	// SnapshotEvery, when > 0, takes a snapshot + compaction
	// synchronously after that many events have been committed since
	// the last snapshot. Leave 0 when a Server's background compactor
	// manages snapshots instead.
	SnapshotEvery int
	// SyncEveryCommit fsyncs after every commit. Durable but slow;
	// leave false to let the caller batch fsyncs via Sync (what
	// Server's group-commit flusher does).
	SyncEveryCommit bool
	// Save controls snapshot encoding. CacheFinalDoc is forced on so
	// cold opens need no replay of the snapshot itself.
	Save egwalker.SaveOptions
	// FS is the filesystem the document's data files go through (nil:
	// the real one). Tests and the fault-injecting simulator substitute
	// a FaultFS here.
	FS FS
	// Quarantine keeps a document whose sealed history is damaged
	// (mid-segment or snapshot corruption) openable: instead of Open
	// failing, the store comes up quarantined — read-only on the
	// salvageable prefix, refusing writes until Repair rebuilds it.
	// Off by default: bare DocStore users keep the fail-stop contract.
	Quarantine bool

	// onMaterialize and onDematerialize are package-internal hooks the
	// Server uses to track its materialized-document population. All
	// these hooks fire under the store's mutex, so they must not call
	// back into the DocStore and should touch only atomics (or hand
	// off to a goroutine). onMaterialize receives the time the
	// materialization took; Close fires onDematerialize when it
	// releases a materialized document. onQuarantine fires once per
	// healthy->quarantined transition; onDegrade fires once when a
	// write error first poisons the store read-only.
	onMaterialize   func(d time.Duration)
	onDematerialize func()
	onQuarantine    func(reason error)
	onDegrade       func(err error)
}

func (o Options) withDefaults() Options {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 1 << 20
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	o.Save.CacheFinalDoc = true
	return o
}

// RecoveryInfo reports what Open had to do to bring a document back.
type RecoveryInfo struct {
	// SnapshotSeq is the segment seq of the snapshot loaded (0: none,
	// recovery started from an empty document).
	SnapshotSeq uint64
	// SkippedSnapshots counts newer snapshots that were unreadable or
	// corrupt and were passed over for an older one.
	SkippedSnapshots int
	// SegmentsReplayed and EventsReplayed measure the WAL tail replay.
	SegmentsReplayed int
	EventsReplayed   int
	// TruncatedBytes is how much torn tail was cut from the final
	// segment (0 for a clean shutdown).
	TruncatedBytes int64
}

// DocStore is one durable document: an egwalker.Doc whose every change
// is appended to a segmented write-ahead log, checkpointed by
// snapshots. All methods are safe for concurrent use.
//
// A DocStore has two modes. Materialized (doc != nil) is the classic
// one: the full egwalker.Doc lives in memory and every method works.
// Journal-only (doc == nil, known != nil) holds just the known-ID set
// scanned from disk: uploads validate and journal without decoding
// beyond their causal structure, and cold catch-ups stream encoded
// blocks straight off disk (CutForServe/StreamBlocks). Methods that
// need the document — Text, Version, EventsSince, Snapshot —
// materialize it on demand by replaying snapshot + WAL from disk.
type DocStore struct {
	mu    sync.Mutex
	root  string // store root; this doc lives in root/<escaped docID>/
	dir   string
	docID string
	agent string
	opts  Options

	fs FS // opts.FS; every data-file access goes through it

	doc       *egwalker.Doc
	known     *idSet // journal-only mode: the IDs the WAL+snapshot hold
	numEvents int    // journal-only mode: distinct events on disk

	lock       *os.File // inter-process flock on the doc directory
	active     File     // nil while quarantined at open time
	activeSeq  uint64
	activeSize int64
	syncedSize int64 // bytes of the active segment known fsynced

	snapSeq         uint64 // newest snapshot covers segments < snapSeq
	firstSeg        uint64 // oldest live segment (>= snapSeq)
	blockServable   bool   // snapshot (if any) is a compact frame a peer can take verbatim
	persisted       egwalker.Version
	eventsSinceSnap int
	sealedSinceSnap int // sealed segments not yet covered by a snapshot
	unsyncedEvents  int // events committed since TakeUnsyncedEvents

	recovery RecoveryInfo
	werr     error // sticky write error; the store refuses further writes
	qerr     error // quarantine reason; non-nil means damaged, read-only
	salvage  SalvageInfo
	closed   bool
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%08d.seg", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.egw", seq) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open materializes (or creates) the document docID under the store
// root, recovering snapshot + WAL tail from disk. The agent names this
// replica for future local edits, exactly as in egwalker.Load.
func Open(root, docID, agent string, opts Options) (*DocStore, error) {
	return open(root, docID, agent, opts, false)
}

// OpenLazy opens (or creates) the document journal-only when it can:
// instead of decoding the history into an egwalker.Doc, recovery scans
// the snapshot's and WAL blocks' ID runs and causal references — a
// fraction of the work and near-zero resident memory per document.
// Anything the scan cannot vouch for (a legacy-format snapshot, a
// causal gap, damage beyond a torn tail) falls back to the
// materialized recovery Open performs. The document materializes
// lazily on first use of a method that needs it.
func OpenLazy(root, docID, agent string, opts Options) (*DocStore, error) {
	return open(root, docID, agent, opts, true)
}

func open(root, docID, agent string, opts Options, lazy bool) (*DocStore, error) {
	opts = opts.withDefaults()
	dir := filepath.Join(root, escapeDocID(docID))
	if err := opts.FS.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			unlockDir(lock)
		}
	}()
	s := &DocStore{root: root, dir: dir, docID: docID, agent: agent, opts: opts, fs: opts.FS, lock: lock}
	if lazy {
		if err := s.recoverJournal(); err == nil {
			opened = true
			return s, nil
		}
		// The scan hit something only the full decoder can judge; start
		// over on the materialized path, which reports real errors
		// precisely (and can fall past a corrupt newest snapshot).
		*s = DocStore{root: root, dir: dir, docID: docID, agent: agent, opts: opts, fs: opts.FS, lock: lock}
	}
	if err := s.recoverMaterialized(); err != nil {
		if !opts.Quarantine {
			return nil, err
		}
		// Sealed history is damaged. Come up quarantined instead of
		// refusing: salvage what replays cleanly and serve it read-only
		// until Repair rebuilds the document.
		*s = DocStore{root: root, dir: dir, docID: docID, agent: agent, opts: opts, fs: opts.FS, lock: lock}
		if qerr := s.recoverQuarantined(err); qerr != nil {
			return nil, qerr
		}
	}
	opened = true
	return s, nil
}

// scanDirSeqs lists the document directory's snapshot and segment
// sequence numbers, each sorted ascending.
func (s *DocStore) scanDirSeqs() (snaps, segs []uint64, err error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".egw"); ok {
			snaps = append(snaps, seq)
		}
		if seq, ok := parseSeq(e.Name(), "wal-", ".seg"); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}

// recoverMaterialized is the classic recovery: load the newest
// loadable snapshot and replay the WAL tail into an egwalker.Doc.
func (s *DocStore) recoverMaterialized() error {
	snaps, segs, err := s.scanDirSeqs()
	if err != nil {
		return err
	}

	// Newest loadable snapshot wins; unreadable ones (torn by a crash
	// mid-rename, or bit-rotted) are skipped in favour of older ones —
	// the WAL segments they covered replay the difference.
	start := time.Now()
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := s.fs.ReadFile(filepath.Join(s.dir, snapName(snaps[i])))
		if err != nil {
			s.recovery.SkippedSnapshots++
			continue
		}
		doc, err := egwalker.Load(bytes.NewReader(data), s.agent)
		if err != nil {
			s.recovery.SkippedSnapshots++
			continue
		}
		s.doc = doc
		s.snapSeq = snaps[i]
		s.recovery.SnapshotSeq = snaps[i]
		break
	}
	if s.doc == nil {
		s.doc = egwalker.NewDoc(s.agent)
	}

	// Replay WAL segments the snapshot does not cover, oldest first.
	lastRemoved := false
	for i, seq := range segs {
		if seq < s.snapSeq {
			continue
		}
		path := filepath.Join(s.dir, segName(seq))
		res, err := replaySegment(s.fs, path)
		if err != nil {
			return err
		}
		last := i == len(segs)-1
		if res.tail != nil {
			if !last || !tornTail(res.tail) {
				return fmt.Errorf("store: segment %s corrupt: %w", path, res.tail)
			}
			// Torn tail from a crash mid-append: cut it off. A segment
			// torn inside its own header is recreated from scratch — a
			// headerless file must never be appended to.
			fi, err := s.fs.Stat(path)
			if err != nil {
				return err
			}
			s.recovery.TruncatedBytes = fi.Size() - res.validLen
			if res.validLen < segHeaderLen {
				if err := s.fs.Remove(path); err != nil {
					return err
				}
				lastRemoved = true
			} else if err := s.fs.Truncate(path, res.validLen); err != nil {
				return err
			}
		}
		for _, evs := range res.batches {
			if _, err := s.doc.Apply(evs); err != nil {
				return fmt.Errorf("store: replaying %s: %w", path, err)
			}
			s.recovery.EventsReplayed += len(evs)
		}
		s.recovery.SegmentsReplayed++
	}
	if p := s.doc.PendingEvents(); p > 0 {
		return fmt.Errorf("store: recovery left %d events with missing parents (WAL gap: a segment the snapshot needed is gone)", p)
	}

	if err := s.openActive(segs, lastRemoved); err != nil {
		return err
	}
	s.persisted = s.doc.Version()
	s.eventsSinceSnap = s.recovery.EventsReplayed
	s.sealedSinceSnap = s.recovery.SegmentsReplayed - 1
	if s.sealedSinceSnap < 0 {
		s.sealedSinceSnap = 0
	}
	s.blockServable = s.snapSeq == 0 || snapshotServable(s.fs, filepath.Join(s.dir, snapName(s.snapSeq)))
	if s.opts.onMaterialize != nil {
		s.opts.onMaterialize(time.Since(start))
	}
	return nil
}

// openActive reopens (or creates) the active segment and records the
// oldest live segment for block streaming. Shared tail of both
// recovery paths.
func (s *DocStore) openActive(segs []uint64, lastRemoved bool) error {
	switch {
	case len(segs) > 0 && !lastRemoved:
		s.activeSeq = segs[len(segs)-1]
		f, err := s.fs.OpenFile(filepath.Join(s.dir, segName(s.activeSeq)), os.O_RDWR, 0)
		if err != nil {
			return err
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return err
		}
		s.active, s.activeSize = f, size
	default:
		s.activeSeq = s.snapSeq
		if len(segs) > 0 {
			s.activeSeq = segs[len(segs)-1]
		}
		if s.activeSeq == 0 {
			s.activeSeq = 1
		}
		if err := s.createActive(); err != nil {
			return err
		}
	}
	s.syncedSize = s.activeSize
	s.firstSeg = s.activeSeq
	for _, seq := range segs {
		if seq >= s.snapSeq && !(lastRemoved && seq == segs[len(segs)-1]) {
			s.firstSeg = seq
			break
		}
	}
	return nil
}

// snapshotServable reports whether a snapshot file can be handed to a
// compact peer verbatim as one catch-up frame: compact columnar format
// and within the frame payload cap.
func snapshotServable(fs FS, path string) bool {
	fi, err := fs.Stat(path)
	if err != nil || fi.Size() > egwalker.MaxDeltaPayload {
		return false
	}
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return false
	}
	var magic [4]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	return rerr == nil && egwalker.IsCompactBatch(magic[:])
}

// recoverJournal brings the store up journal-only: it reads the newest
// snapshot's ID runs and walks every later WAL block's causal
// structure — egwalker.InspectBatch for compact payloads, a full (but
// proportional) decode for legacy ones — without ever constructing the
// document. Any obstacle it cannot vouch for (a legacy-format
// snapshot, a causal gap, damage beyond a torn tail) aborts with an
// error; the caller falls back to materialized recovery.
func (s *DocStore) recoverJournal() error {
	snaps, segs, err := s.scanDirSeqs()
	if err != nil {
		return err
	}
	known := newIDSet()
	s.blockServable = true

	if len(snaps) > 0 {
		seq := snaps[len(snaps)-1]
		data, err := s.fs.ReadFile(filepath.Join(s.dir, snapName(seq)))
		if err != nil {
			return err
		}
		if !egwalker.IsCompactBatch(data) {
			return fmt.Errorf("store: snapshot %s is not a compact frame", snapName(seq))
		}
		info, err := egwalker.InspectBatch(data)
		if err != nil {
			return fmt.Errorf("store: snapshot %s: %w", snapName(seq), err)
		}
		for _, r := range info.Runs {
			known.addRun(r.Agent, r.Seq, r.Len)
		}
		for _, p := range info.ExternalParents {
			if !known.has(p) {
				return fmt.Errorf("store: snapshot %s references unknown parent %s/%d", snapName(seq), p.Agent, p.Seq)
			}
		}
		s.numEvents = info.Events
		s.snapSeq = seq
		s.recovery.SnapshotSeq = seq
		if int64(len(data)) > egwalker.MaxDeltaPayload {
			s.blockServable = false
		}
	}

	// Scan WAL segments the snapshot does not cover, oldest first,
	// with the same torn-tail repair policy as materialized recovery.
	lastRemoved := false
	prevSeq := uint64(0)
	for i, seq := range segs {
		if seq < s.snapSeq {
			continue
		}
		if prevSeq != 0 && seq != prevSeq+1 {
			return fmt.Errorf("store: segment numbering gap %d -> %d", prevSeq, seq)
		}
		prevSeq = seq
		path := filepath.Join(s.dir, segName(seq))
		data, err := s.fs.ReadFile(path)
		if err != nil {
			return err
		}
		segEvents := 0
		w, err := walkSegmentBlocks(data, func(payload []byte) error {
			fresh, err := scanBlockPayload(payload, known)
			segEvents += fresh
			return err
		})
		if err != nil {
			return fmt.Errorf("store: scanning %s: %w", path, err)
		}
		last := i == len(segs)-1
		if w.tail != nil {
			if !last || !tornTail(w.tail) {
				return fmt.Errorf("store: segment %s corrupt: %w", path, w.tail)
			}
			s.recovery.TruncatedBytes = int64(len(data)) - w.validLen
			if w.validLen < segHeaderLen {
				if err := s.fs.Remove(path); err != nil {
					return err
				}
				lastRemoved = true
			} else if err := s.fs.Truncate(path, w.validLen); err != nil {
				return err
			}
		}
		s.recovery.EventsReplayed += segEvents
		s.recovery.SegmentsReplayed++
		s.numEvents += segEvents
		s.eventsSinceSnap += segEvents
	}

	if err := s.openActive(segs, lastRemoved); err != nil {
		return err
	}
	s.known = known
	s.sealedSinceSnap = s.recovery.SegmentsReplayed - 1
	if s.sealedSinceSnap < 0 {
		s.sealedSinceSnap = 0
	}
	return nil
}

// scanBlockPayload folds one WAL block's IDs into known, verifying
// every causal reference lands on an already-known event (or an
// earlier event of the same batch). Returns how many of the block's
// events were not already known.
func scanBlockPayload(payload []byte, known *idSet) (int, error) {
	if egwalker.IsCompactBatch(payload) {
		info, err := egwalker.InspectBatch(payload)
		if err != nil {
			return 0, err
		}
		fresh := 0
		for _, r := range info.Runs {
			fresh += known.countNew(r.Agent, r.Seq, r.Len)
			known.addRun(r.Agent, r.Seq, r.Len)
		}
		// External-form parents may still point in-batch (beyond the
		// encoder's back-reference window), so the batch's own runs are
		// added before the check.
		for _, p := range info.ExternalParents {
			if !known.has(p) {
				return fresh, fmt.Errorf("store: block references unknown parent %s/%d", p.Agent, p.Seq)
			}
		}
		return fresh, nil
	}
	evs, err := egwalker.UnmarshalEvents(payload)
	if err != nil {
		return 0, err
	}
	fresh := 0
	for _, ev := range evs {
		if known.has(ev.ID) {
			continue
		}
		for _, p := range ev.Parents {
			if !known.has(p) {
				return fresh, fmt.Errorf("store: block references unknown parent %s/%d", p.Agent, p.Seq)
			}
		}
		known.addRun(ev.ID.Agent, ev.ID.Seq, 1)
		fresh++
	}
	return fresh, nil
}

// createActive makes wal-<activeSeq>.seg with a fresh header and
// fsyncs it (plus the directory) so the segment survives a crash.
func (s *DocStore) createActive() error {
	f, err := s.fs.OpenFile(filepath.Join(s.dir, segName(s.activeSeq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	if err := writeSegmentHeader(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	syncDir(s.dir)
	s.active = f
	s.activeSize = segHeaderLen
	s.syncedSize = segHeaderLen
	return nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best effort: not all filesystems support directory fsync
		d.Close()
	}
}

// DocID returns the hosted document's ID.
func (s *DocStore) DocID() string { return s.docID }

// Recovery reports what Open did (snapshot chosen, events replayed,
// torn bytes truncated).
func (s *DocStore) Recovery() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Materialized reports whether the document is currently in memory
// (as opposed to journal-only).
func (s *DocStore) Materialized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc != nil
}

// Materialize brings the document into memory if it is journal-only,
// replaying snapshot + WAL from disk. Most callers never need it —
// every method that requires the document materializes on demand —
// but it surfaces the replay error precisely for callers about to use
// a value-returning accessor.
func (s *DocStore) Materialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.materializeLocked()
}

// materializeLocked loads the document from disk (snapshot snapSeq
// plus segments firstSeg..activeSeq — everything written is visible
// through the filesystem, fsynced or not) and leaves journal-only
// mode.
func (s *DocStore) materializeLocked() error {
	if s.doc != nil {
		return nil
	}
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.docID)
	}
	start := time.Now()
	var doc *egwalker.Doc
	if s.snapSeq > 0 {
		data, err := s.fs.ReadFile(filepath.Join(s.dir, snapName(s.snapSeq)))
		if err != nil {
			return fmt.Errorf("store: materializing %s: %w", s.docID, err)
		}
		doc, err = egwalker.Load(bytes.NewReader(data), s.agent)
		if err != nil {
			return fmt.Errorf("store: materializing %s: %w", s.docID, err)
		}
	} else {
		doc = egwalker.NewDoc(s.agent)
	}
	for seq := s.firstSeg; seq <= s.activeSeq; seq++ {
		path := filepath.Join(s.dir, segName(seq))
		res, err := replaySegment(s.fs, path)
		if err != nil {
			return fmt.Errorf("store: materializing %s: %w", s.docID, err)
		}
		// A torn tail on the active segment is tolerated only when the
		// store already refuses writes for it (sticky werr after a
		// partial append); anything else is damage that appeared while
		// the store was live.
		if res.tail != nil && !(seq == s.activeSeq && s.werr != nil && tornTail(res.tail)) {
			return fmt.Errorf("store: materializing %s: segment %s: %w", s.docID, path, res.tail)
		}
		for _, evs := range res.batches {
			if _, err := doc.Apply(evs); err != nil {
				return fmt.Errorf("store: materializing %s: replaying %s: %w", s.docID, path, err)
			}
		}
	}
	if p := doc.PendingEvents(); p > 0 {
		return fmt.Errorf("store: materializing %s left %d events with missing parents", s.docID, p)
	}
	s.doc = doc
	s.persisted = doc.Version()
	s.known = nil
	if s.opts.onMaterialize != nil {
		s.opts.onMaterialize(time.Since(start))
	}
	return nil
}

// Dematerialize releases the in-memory document, dropping the store
// back to journal-only mode: the known-ID set is rebuilt from the doc
// and the doc freed. It refuses (keeping the doc) when in-memory
// state would be lost — events buffered for missing parents live
// nowhere else — or when a sticky write error means disk lags the doc.
func (s *DocStore) Dematerialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.docID)
	}
	if s.doc == nil {
		return nil
	}
	if s.werr != nil {
		return s.werr
	}
	if s.qerr != nil {
		// The salvaged document exists only in memory; the disk under it
		// is damaged, so letting it go would lose the salvage.
		return fmt.Errorf("%w: %v", ErrQuarantined, s.qerr)
	}
	if p := s.doc.PendingEvents(); p > 0 {
		return fmt.Errorf("store: %s holds %d events buffered for missing parents", s.docID, p)
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	known := newIDSet()
	evs := s.doc.Events()
	known.addEvents(evs)
	s.known = known
	s.numEvents = len(evs)
	s.doc = nil
	s.persisted = nil
	if s.opts.onDematerialize != nil {
		s.opts.onDematerialize()
	}
	return nil
}

// Doc exposes the underlying replica for reads (Events, EventsSince,
// Fingerprint, TextAt...), materializing it if needed (nil only if
// materialization fails). Mutate only through DocStore methods, or the
// changes will not be journaled.
func (s *DocStore) Doc() *egwalker.Doc {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.materializeLocked()
	return s.doc
}

// Text returns the current document text, materializing if needed
// ("" if materialization fails; use Materialize for the error).
func (s *DocStore) Text() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.materializeLocked() != nil {
		return ""
	}
	return s.doc.Text()
}

// Len returns the document length in runes, materializing if needed.
func (s *DocStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.materializeLocked() != nil {
		return 0
	}
	return s.doc.Len()
}

// Fingerprint returns the document's history fingerprint (see
// Doc.Fingerprint), materializing if needed — the cluster convergence
// oracle: replicas holding the same history agree on it.
func (s *DocStore) Fingerprint() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.materializeLocked(); err != nil {
		return 0, err
	}
	return s.doc.Fingerprint(), nil
}

// Version returns the document's current version, materializing if
// needed (nil if materialization fails).
func (s *DocStore) Version() egwalker.Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.materializeLocked() != nil {
		return nil
	}
	return s.doc.Version()
}

// NumEvents returns the number of events in the document's history.
// Journal-only stores answer from the known-ID set without
// materializing.
func (s *DocStore) NumEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doc == nil {
		return s.numEvents
	}
	return s.doc.NumEvents()
}

// Events returns the full history in causal order (see Doc.Events),
// materializing if needed (nil if materialization fails).
func (s *DocStore) Events() []egwalker.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.materializeLocked() != nil {
		return nil
	}
	return s.doc.Events()
}

// EventsSince returns the events not within v (see Doc.EventsSince),
// materializing if needed.
func (s *DocStore) EventsSince(v egwalker.Version) ([]egwalker.Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.materializeLocked(); err != nil {
		return nil, err
	}
	return s.doc.EventsSince(v)
}

// EventsSinceKnown is EventsSince with unknown IDs in v ignored: the
// legacy incremental-resume path. A reconnecting client's version may
// reference events this server never received (edits synced between
// peers while offline); narrowing to the known subset still yields a
// superset of what the client is missing, and its Apply deduplicates.
// The superset can be arbitrarily large — dropping a head anchors the
// diff below everything that head dominates — which is exactly what
// the summary handshake (EventsSinceSummary) eliminates.
func (s *DocStore) EventsSinceKnown(v egwalker.Version) ([]egwalker.Event, error) {
	events, _, err := s.EventsSinceKnownLossy(v)
	return events, err
}

// EventsSinceKnownLossy is EventsSinceKnown, additionally reporting
// how many of v's IDs were unknown here and silently dropped. dropped
// > 0 means the answer re-sends history the client already has — the
// signal the server's resume_fallbacks metric counts for legacy
// clients.
func (s *DocStore) EventsSinceKnownLossy(v egwalker.Version) (events []egwalker.Event, dropped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.materializeLocked(); err != nil {
		return nil, 0, err
	}
	known := s.doc.KnownSubset(v)
	events, err = s.doc.EventsSince(known)
	return events, len(v) - len(known), err
}

// Summary returns the run-length version summary of everything the
// store holds. Journal-only stores answer from the known-ID index —
// which already is the summary — without materializing; this is what
// keeps the cluster's steady-state anti-entropy exchange free of
// materialization.
func (s *DocStore) Summary() (egwalker.VersionSummary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doc == nil && s.known != nil {
		return s.known.summary(), nil
	}
	if err := s.materializeLocked(); err != nil {
		return nil, err
	}
	return s.doc.Summary(), nil
}

// EventsSinceSummary returns exactly the events the peer summary does
// not cover (see Doc.EventsSinceSummary) — the exact-diff serving
// side of the summary handshake. When a journal-only store's entire
// event set is covered by the summary the answer is empty and the
// document is never materialized: converged replicas heal-check each
// other for free.
func (s *DocStore) EventsSinceSummary(sum egwalker.VersionSummary) ([]egwalker.Event, error) {
	if err := sum.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doc == nil && s.known != nil && s.known.coveredBy(sum) {
		return nil, nil
	}
	if err := s.materializeLocked(); err != nil {
		return nil, err
	}
	return s.doc.EventsSinceSummary(sum)
}

// UnsnapshottedEvents reports how many events have been journaled
// since the last snapshot — the compaction-pressure signal Server's
// flusher watches.
func (s *DocStore) UnsnapshottedEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eventsSinceSnap
}

// Insert applies a local insert and journals it, materializing first
// if needed.
func (s *DocStore) Insert(pos int, text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	if err := s.materializeLocked(); err != nil {
		return err
	}
	if err := s.doc.Insert(pos, text); err != nil {
		return err
	}
	return s.commitLocked()
}

// Delete applies a local delete and journals it, materializing first
// if needed.
func (s *DocStore) Delete(pos, count int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	if err := s.materializeLocked(); err != nil {
		return err
	}
	if err := s.doc.Delete(pos, count); err != nil {
		return err
	}
	return s.commitLocked()
}

// Apply merges remote events (as Doc.Apply) and journals whatever was
// admitted, materializing first if needed. Events still waiting for
// missing parents are buffered in memory only — a causal gap lost in a
// crash is recovered the same way a message lost on the network is: by
// anti-entropy with peers.
func (s *DocStore) Apply(events []egwalker.Event) ([]egwalker.Patch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return nil, err
	}
	if err := s.materializeLocked(); err != nil {
		return nil, err
	}
	patches, err := s.doc.Apply(events)
	if err != nil {
		return nil, err
	}
	if err := s.commitLocked(); err != nil {
		return nil, err
	}
	return patches, nil
}

// errCausalGap reports an uploaded batch whose parents the journal
// does not hold; IngestBatch responds by materializing, since only
// Doc.Apply can buffer a causal gap.
var errCausalGap = errors.New("store: batch references events the journal does not hold")

// IngestBatch merges an uploaded batch and journals it — the hosted
// server's upload path. When the store is journal-only and the batch's
// causal references check out against the known-ID set, the uploader's
// raw encoded payload (if provided) is appended to the WAL verbatim:
// no document, no decode beyond what the wire already did, no
// re-encode. Otherwise it behaves exactly like Apply. Returns how
// many of the batch's events were new to this store.
//
// The journal-only path validates causal structure but not positions;
// a structurally valid but semantically impossible event surfaces as
// an error at materialization time instead of at upload time — the
// price of never building the document on the hot path.
func (s *DocStore) IngestBatch(events []egwalker.Event, raw []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return 0, err
	}
	if s.doc == nil {
		n, err := s.journalAppendLocked(events, raw)
		if err == nil || !errors.Is(err, errCausalGap) {
			return n, err
		}
		if err := s.materializeLocked(); err != nil {
			return 0, err
		}
	}
	before := s.doc.NumEvents()
	if _, err := s.doc.Apply(events); err != nil {
		return 0, err
	}
	if err := s.commitLocked(); err != nil {
		return 0, err
	}
	return s.doc.NumEvents() - before, nil
}

// journalAppendLocked admits a batch in journal-only mode: every event
// must be a duplicate or have all parents in the known set (or earlier
// in the batch — uploads arrive in causal order). Fully duplicate
// batches journal nothing. The raw payload is preferred verbatim; a
// nil or uncappable raw is re-encoded from the decoded events.
func (s *DocStore) journalAppendLocked(events []egwalker.Event, raw []byte) (int, error) {
	fresh := 0
	var batch map[egwalker.EventID]bool
	for _, ev := range events {
		if batch == nil {
			batch = make(map[egwalker.EventID]bool, len(events))
		}
		if !s.known.has(ev.ID) && !batch[ev.ID] {
			for _, p := range ev.Parents {
				if !s.known.has(p) && !batch[p] {
					return 0, fmt.Errorf("%w: %s/%d needs %s/%d", errCausalGap, ev.ID.Agent, ev.ID.Seq, p.Agent, p.Seq)
				}
			}
			fresh++
		}
		batch[ev.ID] = true
	}
	if fresh == 0 {
		return 0, nil
	}
	var blocks [][]byte
	if raw != nil {
		if block, err := egwalker.WrapDeltaPayload(raw); err == nil {
			blocks = [][]byte{block}
		}
	}
	if blocks == nil {
		var err error
		if len(events) >= compactWALThreshold {
			blocks, err = egwalker.DeltaBlocksCompact(events)
		} else {
			blocks, err = egwalker.DeltaBlocks(events)
		}
		if err != nil {
			return 0, fmt.Errorf("store: encoding WAL batch: %w", err)
		}
	}
	if err := s.appendBlocksLocked(blocks); err != nil {
		return 0, err
	}
	s.known.addEvents(events)
	s.numEvents += fresh
	return fresh, s.afterAppendLocked(fresh)
}

func (s *DocStore) writable() error {
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.docID)
	}
	if s.qerr != nil {
		return fmt.Errorf("%w: %v", ErrQuarantined, s.qerr)
	}
	return s.werr
}

// setWerrLocked records the first write error, poisoning the store
// read-only, and fires the degradation hook exactly once.
func (s *DocStore) setWerrLocked(err error) {
	if s.werr != nil {
		return
	}
	s.werr = err
	if s.opts.onDegrade != nil {
		s.opts.onDegrade(err)
	}
}

// commitLocked journals everything the doc knows beyond the persisted
// version as delta blocks on the active segment, then rotates and
// snapshots per policy. Called with s.mu held after every mutation, so
// the WAL is always a complete journal of the admitted history.
func (s *DocStore) commitLocked() error {
	evs, err := s.doc.EventsSince(s.persisted)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return nil
	}
	// Encode first: a batch the codec rejects writes no bytes and does
	// not poison the store. DeltaBlocks splits by count and, for
	// pathological event sizes, by bytes, so a legal batch always
	// encodes. Batches worth run-length-encoding go out as compact
	// columnar blocks (ReadDelta sniffs per payload, so legacy and
	// compact blocks interleave freely within a segment); tiny
	// group commits stay on the legacy codec, whose fixed overhead is
	// a few bytes rather than the columnar header's ~20.
	var blocks [][]byte
	if len(evs) >= compactWALThreshold {
		blocks, err = egwalker.DeltaBlocksCompact(evs)
	} else {
		blocks, err = egwalker.DeltaBlocks(evs)
	}
	if err != nil {
		return fmt.Errorf("store: encoding WAL batch: %w", err)
	}
	if err := s.appendBlocksLocked(blocks); err != nil {
		return err
	}
	s.persisted = s.doc.Version()
	return s.afterAppendLocked(len(evs))
}

// appendBlocksLocked writes encoded delta blocks to the active
// segment, poisoning the store on a partial write.
func (s *DocStore) appendBlocksLocked(blocks [][]byte) error {
	for _, block := range blocks {
		n, err := s.active.Write(block)
		s.activeSize += int64(n)
		if err != nil {
			// A partial write leaves a torn tail exactly like a crash;
			// refuse further writes so it stays at the tail.
			s.setWerrLocked(fmt.Errorf("store: WAL append failed (reopen to recover): %w", err))
			return s.werr
		}
	}
	return nil
}

// afterAppendLocked applies the post-append policy shared by both
// commit paths: sync, rotate, and snapshot per options.
func (s *DocStore) afterAppendLocked(newEvents int) error {
	s.eventsSinceSnap += newEvents
	s.unsyncedEvents += newEvents
	if s.opts.SyncEveryCommit {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.activeSize >= s.opts.SegmentMaxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if s.opts.SnapshotEvery > 0 && s.eventsSinceSnap >= s.opts.SnapshotEvery {
		return s.compactLocked()
	}
	return nil
}

// TakeUnsyncedEvents returns how many events were committed since the
// last call and resets the count: the group-commit batch-size signal a
// flusher records after each fsync (how much work one fsync made
// durable).
func (s *DocStore) TakeUnsyncedEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.unsyncedEvents
	s.unsyncedEvents = 0
	return n
}

// Sync fsyncs the active segment: everything committed so far becomes
// crash-durable. Callers serving many appends batch their fsyncs by
// calling Sync on a timer or per client round-trip (see Server).
func (s *DocStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.docID)
	}
	return s.syncLocked()
}

func (s *DocStore) syncLocked() error {
	if s.syncedSize == s.activeSize {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		s.setWerrLocked(err)
		return err
	}
	s.syncedSize = s.activeSize
	return nil
}

// rotateLocked seals the active segment (fsync + close) and starts the
// next one.
func (s *DocStore) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.activeSeq++
	s.sealedSinceSnap++
	return s.createActive()
}

// Snapshot checkpoints the document: the active segment is sealed, and
// a full Doc.Save (with the final text cached) is written atomically as
// snap-<seq>.egw covering every sealed segment. Compact removes what
// the snapshot made redundant.
func (s *DocStore) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	return s.snapshotLocked()
}

func (s *DocStore) snapshotLocked() error {
	if err := s.materializeLocked(); err != nil {
		return err
	}
	if err := s.rotateLocked(); err != nil {
		return err
	}
	final := filepath.Join(s.dir, snapName(s.activeSeq))
	tmp := final + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	err = s.doc.Save(f, s.opts.Save)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(s.dir)
	s.snapSeq = s.activeSeq
	s.firstSeg = s.activeSeq
	s.eventsSinceSnap = 0
	s.sealedSinceSnap = 0
	s.blockServable = snapshotServable(s.fs, final)
	return nil
}

// Compact folds the log down: ensures a snapshot covers all sealed
// segments, then deletes those segments and all older snapshots. The
// surviving on-disk state is one snapshot plus the active WAL tail —
// the paper's compact file format, incrementally maintained.
func (s *DocStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	return s.compactLocked()
}

func (s *DocStore) compactLocked() error {
	if s.eventsSinceSnap > 0 || s.sealedSinceSnap > 0 || s.snapSeq == 0 {
		if err := s.snapshotLocked(); err != nil {
			return err
		}
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".seg"); ok && seq < s.snapSeq {
			s.fs.Remove(filepath.Join(s.dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".egw"); ok && seq < s.snapSeq {
			s.fs.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	syncDir(s.dir)
	return nil
}

// DiskUsage reports the document's on-disk footprint: snapshot bytes,
// WAL bytes, and file count.
func (s *DocStore) DiskUsage() (snapBytes, walBytes int64, files int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return 0, 0, 0
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		if _, ok := parseSeq(e.Name(), "snap-", ".egw"); ok {
			snapBytes += fi.Size()
			files++
		}
		if _, ok := parseSeq(e.Name(), "wal-", ".seg"); ok {
			walBytes += fi.Size()
			files++
		}
	}
	return snapBytes, walBytes, files
}

// Close syncs and releases the store. The document stays fully
// recoverable from disk.
func (s *DocStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.active != nil {
		err = s.syncLocked()
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
	}
	unlockDir(s.lock)
	if s.doc != nil && s.opts.onDematerialize != nil {
		// Closing a materialized store releases its document; keep the
		// server's materialized-population accounting exact.
		s.opts.onDematerialize()
	}
	return err
}

// Crash simulates an OS-level crash for tests and the fault-injecting
// simulator: every byte written since the last fsync is lost (the
// active segment is truncated back to its synced length), the
// in-memory state is dropped, and the document is recovered from disk
// exactly as a restarted process would. The receiver is unusable
// afterwards; use the returned store.
func (s *DocStore) Crash() (*DocStore, error) {
	s.mu.Lock()
	s.closed = true
	path := filepath.Join(s.dir, segName(s.activeSeq))
	synced := s.syncedSize
	if s.active != nil {
		s.active.Close()
	}
	unlockDir(s.lock)
	root, docID, agent, opts := s.root, s.docID, s.agent, s.opts
	hadActive := s.active != nil
	s.mu.Unlock()
	if hadActive {
		if err := s.fs.Truncate(path, synced); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	return Open(root, docID, agent, opts)
}
