package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"egwalker"
)

// ErrLocked reports a document directory already open by another
// DocStore (usually another process; also a concurrent evicted store
// whose close has not finished).
var ErrLocked = errors.New("store: document directory is locked by another store")

// compactWALThreshold is the batch size from which journaled delta
// blocks switch to the compact columnar payload: below it the columnar
// header outweighs its run-length savings, above it runs dominate.
const compactWALThreshold = 8

// Options tune one durable document.
type Options struct {
	// SegmentMaxBytes is the WAL rotation threshold (default 1 MiB): a
	// commit that pushes the active segment past it seals the segment
	// and starts a new one.
	SegmentMaxBytes int64
	// SnapshotEvery, when > 0, takes a snapshot + compaction
	// synchronously after that many events have been committed since
	// the last snapshot. Leave 0 when a Server's background compactor
	// manages snapshots instead.
	SnapshotEvery int
	// SyncEveryCommit fsyncs after every commit. Durable but slow;
	// leave false to let the caller batch fsyncs via Sync (what
	// Server's group-commit flusher does).
	SyncEveryCommit bool
	// Save controls snapshot encoding. CacheFinalDoc is forced on so
	// cold opens need no replay of the snapshot itself.
	Save egwalker.SaveOptions
}

func (o Options) withDefaults() Options {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 1 << 20
	}
	o.Save.CacheFinalDoc = true
	return o
}

// RecoveryInfo reports what Open had to do to bring a document back.
type RecoveryInfo struct {
	// SnapshotSeq is the segment seq of the snapshot loaded (0: none,
	// recovery started from an empty document).
	SnapshotSeq uint64
	// SkippedSnapshots counts newer snapshots that were unreadable or
	// corrupt and were passed over for an older one.
	SkippedSnapshots int
	// SegmentsReplayed and EventsReplayed measure the WAL tail replay.
	SegmentsReplayed int
	EventsReplayed   int
	// TruncatedBytes is how much torn tail was cut from the final
	// segment (0 for a clean shutdown).
	TruncatedBytes int64
}

// DocStore is one durable document: an egwalker.Doc whose every change
// is appended to a segmented write-ahead log, checkpointed by
// snapshots. All methods are safe for concurrent use.
type DocStore struct {
	mu    sync.Mutex
	root  string // store root; this doc lives in root/<escaped docID>/
	dir   string
	docID string
	agent string
	opts  Options

	doc *egwalker.Doc

	lock       *os.File // inter-process flock on the doc directory
	active     *os.File
	activeSeq  uint64
	activeSize int64
	syncedSize int64 // bytes of the active segment known fsynced

	snapSeq         uint64 // newest snapshot covers segments < snapSeq
	persisted       egwalker.Version
	eventsSinceSnap int
	sealedSinceSnap int // sealed segments not yet covered by a snapshot
	unsyncedEvents  int // events committed since TakeUnsyncedEvents

	recovery RecoveryInfo
	werr     error // sticky write error; the store refuses further writes
	closed   bool
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%08d.seg", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.egw", seq) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open materializes (or creates) the document docID under the store
// root, recovering snapshot + WAL tail from disk. The agent names this
// replica for future local edits, exactly as in egwalker.Load.
func Open(root, docID, agent string, opts Options) (*DocStore, error) {
	opts = opts.withDefaults()
	dir := filepath.Join(root, escapeDocID(docID))
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			unlockDir(lock)
		}
	}()
	s := &DocStore{root: root, dir: dir, docID: docID, agent: agent, opts: opts, lock: lock}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps, segs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".egw"); ok {
			snaps = append(snaps, seq)
		}
		if seq, ok := parseSeq(e.Name(), "wal-", ".seg"); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	// Newest loadable snapshot wins; unreadable ones (torn by a crash
	// mid-rename, or bit-rotted) are skipped in favour of older ones —
	// the WAL segments they covered replay the difference.
	for i := len(snaps) - 1; i >= 0; i-- {
		f, err := os.Open(filepath.Join(dir, snapName(snaps[i])))
		if err != nil {
			s.recovery.SkippedSnapshots++
			continue
		}
		doc, err := egwalker.Load(f, agent)
		f.Close()
		if err != nil {
			s.recovery.SkippedSnapshots++
			continue
		}
		s.doc = doc
		s.snapSeq = snaps[i]
		s.recovery.SnapshotSeq = snaps[i]
		break
	}
	if s.doc == nil {
		s.doc = egwalker.NewDoc(agent)
	}

	// Replay WAL segments the snapshot does not cover, oldest first.
	lastRemoved := false
	for i, seq := range segs {
		if seq < s.snapSeq {
			continue
		}
		path := filepath.Join(dir, segName(seq))
		res, err := replaySegment(path)
		if err != nil {
			return nil, err
		}
		last := i == len(segs)-1
		if res.tail != nil {
			if !last || !tornTail(res.tail) {
				return nil, fmt.Errorf("store: segment %s corrupt: %w", path, res.tail)
			}
			// Torn tail from a crash mid-append: cut it off. A segment
			// torn inside its own header is recreated from scratch — a
			// headerless file must never be appended to.
			fi, err := os.Stat(path)
			if err != nil {
				return nil, err
			}
			s.recovery.TruncatedBytes = fi.Size() - res.validLen
			if res.validLen < segHeaderLen {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				lastRemoved = true
			} else if err := os.Truncate(path, res.validLen); err != nil {
				return nil, err
			}
		}
		for _, evs := range res.batches {
			if _, err := s.doc.Apply(evs); err != nil {
				return nil, fmt.Errorf("store: replaying %s: %w", path, err)
			}
			s.recovery.EventsReplayed += len(evs)
		}
		s.recovery.SegmentsReplayed++
	}
	if p := s.doc.PendingEvents(); p > 0 {
		return nil, fmt.Errorf("store: recovery left %d events with missing parents (WAL gap: a segment the snapshot needed is gone)", p)
	}

	// Reopen (or create) the active segment.
	switch {
	case len(segs) > 0 && !lastRemoved:
		s.activeSeq = segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, segName(s.activeSeq)), os.O_RDWR, 0)
		if err != nil {
			return nil, err
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, err
		}
		s.active, s.activeSize = f, size
	default:
		s.activeSeq = s.snapSeq
		if len(segs) > 0 {
			s.activeSeq = segs[len(segs)-1]
		}
		if s.activeSeq == 0 {
			s.activeSeq = 1
		}
		if err := s.createActive(); err != nil {
			return nil, err
		}
	}
	s.syncedSize = s.activeSize
	s.persisted = s.doc.Version()
	s.eventsSinceSnap = s.recovery.EventsReplayed
	s.sealedSinceSnap = s.recovery.SegmentsReplayed - 1
	if s.sealedSinceSnap < 0 {
		s.sealedSinceSnap = 0
	}
	opened = true
	return s, nil
}

// createActive makes wal-<activeSeq>.seg with a fresh header and
// fsyncs it (plus the directory) so the segment survives a crash.
func (s *DocStore) createActive() error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.activeSeq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	if err := writeSegmentHeader(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	syncDir(s.dir)
	s.active = f
	s.activeSize = segHeaderLen
	s.syncedSize = segHeaderLen
	return nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best effort: not all filesystems support directory fsync
		d.Close()
	}
}

// DocID returns the hosted document's ID.
func (s *DocStore) DocID() string { return s.docID }

// Recovery reports what Open did (snapshot chosen, events replayed,
// torn bytes truncated).
func (s *DocStore) Recovery() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Doc exposes the underlying replica for reads (Events, EventsSince,
// Fingerprint, TextAt...). Mutate only through DocStore methods, or the
// changes will not be journaled.
func (s *DocStore) Doc() *egwalker.Doc { return s.doc }

// Text returns the current document text.
func (s *DocStore) Text() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.Text()
}

// Len returns the document length in runes.
func (s *DocStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.Len()
}

// Version returns the document's current version.
func (s *DocStore) Version() egwalker.Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.Version()
}

// NumEvents returns the number of events in the document's history.
func (s *DocStore) NumEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.NumEvents()
}

// Events returns the full history in causal order (see Doc.Events).
func (s *DocStore) Events() []egwalker.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.Events()
}

// EventsSince returns the events not within v (see Doc.EventsSince).
func (s *DocStore) EventsSince(v egwalker.Version) ([]egwalker.Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.EventsSince(v)
}

// EventsSinceKnown is EventsSince with unknown IDs in v ignored: the
// incremental-resume path. A reconnecting client's version may
// reference events this server never received (edits synced between
// peers while offline); narrowing to the known subset still yields a
// superset of what the client is missing, and its Apply deduplicates.
func (s *DocStore) EventsSinceKnown(v egwalker.Version) ([]egwalker.Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.EventsSince(s.doc.KnownSubset(v))
}

// UnsnapshottedEvents reports how many events have been journaled
// since the last snapshot — the compaction-pressure signal Server's
// flusher watches.
func (s *DocStore) UnsnapshottedEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eventsSinceSnap
}

// Insert applies a local insert and journals it.
func (s *DocStore) Insert(pos int, text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	if err := s.doc.Insert(pos, text); err != nil {
		return err
	}
	return s.commitLocked()
}

// Delete applies a local delete and journals it.
func (s *DocStore) Delete(pos, count int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	if err := s.doc.Delete(pos, count); err != nil {
		return err
	}
	return s.commitLocked()
}

// Apply merges remote events (as Doc.Apply) and journals whatever was
// admitted. Events still waiting for missing parents are buffered in
// memory only — a causal gap lost in a crash is recovered the same way
// a message lost on the network is: by anti-entropy with peers.
func (s *DocStore) Apply(events []egwalker.Event) ([]egwalker.Patch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return nil, err
	}
	patches, err := s.doc.Apply(events)
	if err != nil {
		return nil, err
	}
	if err := s.commitLocked(); err != nil {
		return nil, err
	}
	return patches, nil
}

func (s *DocStore) writable() error {
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.docID)
	}
	return s.werr
}

// commitLocked journals everything the doc knows beyond the persisted
// version as delta blocks on the active segment, then rotates and
// snapshots per policy. Called with s.mu held after every mutation, so
// the WAL is always a complete journal of the admitted history.
func (s *DocStore) commitLocked() error {
	evs, err := s.doc.EventsSince(s.persisted)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return nil
	}
	// Encode first: a batch the codec rejects writes no bytes and does
	// not poison the store. DeltaBlocks splits by count and, for
	// pathological event sizes, by bytes, so a legal batch always
	// encodes. Batches worth run-length-encoding go out as compact
	// columnar blocks (ReadDelta sniffs per payload, so legacy and
	// compact blocks interleave freely within a segment); tiny
	// group commits stay on the legacy codec, whose fixed overhead is
	// a few bytes rather than the columnar header's ~20.
	var blocks [][]byte
	if len(evs) >= compactWALThreshold {
		blocks, err = egwalker.DeltaBlocksCompact(evs)
	} else {
		blocks, err = egwalker.DeltaBlocks(evs)
	}
	if err != nil {
		return fmt.Errorf("store: encoding WAL batch: %w", err)
	}
	for _, block := range blocks {
		n, err := s.active.Write(block)
		s.activeSize += int64(n)
		if err != nil {
			// A partial write leaves a torn tail exactly like a crash;
			// refuse further writes so it stays at the tail.
			s.werr = fmt.Errorf("store: WAL append failed (reopen to recover): %w", err)
			return s.werr
		}
	}
	s.persisted = s.doc.Version()
	s.eventsSinceSnap += len(evs)
	s.unsyncedEvents += len(evs)
	if s.opts.SyncEveryCommit {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.activeSize >= s.opts.SegmentMaxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if s.opts.SnapshotEvery > 0 && s.eventsSinceSnap >= s.opts.SnapshotEvery {
		return s.compactLocked()
	}
	return nil
}

// TakeUnsyncedEvents returns how many events were committed since the
// last call and resets the count: the group-commit batch-size signal a
// flusher records after each fsync (how much work one fsync made
// durable).
func (s *DocStore) TakeUnsyncedEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.unsyncedEvents
	s.unsyncedEvents = 0
	return n
}

// Sync fsyncs the active segment: everything committed so far becomes
// crash-durable. Callers serving many appends batch their fsyncs by
// calling Sync on a timer or per client round-trip (see Server).
func (s *DocStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.docID)
	}
	return s.syncLocked()
}

func (s *DocStore) syncLocked() error {
	if s.syncedSize == s.activeSize {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		s.werr = err
		return err
	}
	s.syncedSize = s.activeSize
	return nil
}

// rotateLocked seals the active segment (fsync + close) and starts the
// next one.
func (s *DocStore) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.activeSeq++
	s.sealedSinceSnap++
	return s.createActive()
}

// Snapshot checkpoints the document: the active segment is sealed, and
// a full Doc.Save (with the final text cached) is written atomically as
// snap-<seq>.egw covering every sealed segment. Compact removes what
// the snapshot made redundant.
func (s *DocStore) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	return s.snapshotLocked()
}

func (s *DocStore) snapshotLocked() error {
	if err := s.rotateLocked(); err != nil {
		return err
	}
	final := filepath.Join(s.dir, snapName(s.activeSeq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	err = s.doc.Save(f, s.opts.Save)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(s.dir)
	s.snapSeq = s.activeSeq
	s.eventsSinceSnap = 0
	s.sealedSinceSnap = 0
	return nil
}

// Compact folds the log down: ensures a snapshot covers all sealed
// segments, then deletes those segments and all older snapshots. The
// surviving on-disk state is one snapshot plus the active WAL tail —
// the paper's compact file format, incrementally maintained.
func (s *DocStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	return s.compactLocked()
}

func (s *DocStore) compactLocked() error {
	if s.eventsSinceSnap > 0 || s.sealedSinceSnap > 0 || s.snapSeq == 0 {
		if err := s.snapshotLocked(); err != nil {
			return err
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".seg"); ok && seq < s.snapSeq {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".egw"); ok && seq < s.snapSeq {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	syncDir(s.dir)
	return nil
}

// DiskUsage reports the document's on-disk footprint: snapshot bytes,
// WAL bytes, and file count.
func (s *DocStore) DiskUsage() (snapBytes, walBytes int64, files int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, 0
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		if _, ok := parseSeq(e.Name(), "snap-", ".egw"); ok {
			snapBytes += fi.Size()
			files++
		}
		if _, ok := parseSeq(e.Name(), "wal-", ".seg"); ok {
			walBytes += fi.Size()
			files++
		}
	}
	return snapBytes, walBytes, files
}

// Close syncs and releases the store. The document stays fully
// recoverable from disk.
func (s *DocStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	unlockDir(s.lock)
	return err
}

// Crash simulates an OS-level crash for tests and the fault-injecting
// simulator: every byte written since the last fsync is lost (the
// active segment is truncated back to its synced length), the
// in-memory state is dropped, and the document is recovered from disk
// exactly as a restarted process would. The receiver is unusable
// afterwards; use the returned store.
func (s *DocStore) Crash() (*DocStore, error) {
	s.mu.Lock()
	s.closed = true
	path := filepath.Join(s.dir, segName(s.activeSeq))
	synced := s.syncedSize
	s.active.Close()
	unlockDir(s.lock)
	root, docID, agent, opts := s.root, s.docID, s.agent, s.opts
	s.mu.Unlock()
	if err := os.Truncate(path, synced); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	return Open(root, docID, agent, opts)
}
