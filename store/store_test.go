package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"egwalker"
)

func mustOpen(t *testing.T, root, docID string, opts Options) *DocStore {
	t.Helper()
	ds, err := Open(root, docID, "tester", opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", docID, err)
	}
	return ds
}

func TestBasicPersistence(t *testing.T) {
	root := t.TempDir()
	ds := mustOpen(t, root, "doc-1", Options{})
	if err := ds.Insert(0, "hello durable world"); err != nil {
		t.Fatal(err)
	}
	if err := ds.Delete(5, 8); err != nil {
		t.Fatal(err)
	}
	want := ds.Text()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, root, "doc-1", Options{})
	defer re.Close()
	if got := re.Text(); got != want {
		t.Fatalf("recovered %q, want %q", got, want)
	}
	if re.Recovery().EventsReplayed == 0 {
		t.Fatal("expected WAL replay on reopen (no snapshot was taken)")
	}
}

func TestSnapshotAndCompaction(t *testing.T) {
	root := t.TempDir()
	ds := mustOpen(t, root, "doc", Options{SegmentMaxBytes: 512})
	for i := 0; i < 200; i++ {
		if err := ds.Insert(ds.Len(), fmt.Sprintf("line %d\n", i)); err != nil {
			t.Fatal(err)
		}
	}
	want := ds.Text()
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	// After compaction: exactly one snapshot, and only the active (post-
	// snapshot) segment remains.
	snapBytes, _, files := ds.DiskUsage()
	if snapBytes == 0 {
		t.Fatal("no snapshot on disk after Compact")
	}
	if files != 2 {
		t.Fatalf("want 1 snapshot + 1 active segment after Compact, found %d files", files)
	}
	// More edits land in the WAL tail after the snapshot.
	if err := ds.Insert(0, "post-snapshot edit. "); err != nil {
		t.Fatal(err)
	}
	want = ds.Text()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, root, "doc", Options{SegmentMaxBytes: 512})
	defer re.Close()
	if got := re.Text(); got != want {
		t.Fatalf("recovered %q, want %q", got, want)
	}
	ri := re.Recovery()
	if ri.SnapshotSeq == 0 {
		t.Fatal("reopen did not use the snapshot")
	}
	if ri.EventsReplayed != 20 { // the post-snapshot insert, one event per rune
		t.Fatalf("replayed %d events from the tail, want 20", ri.EventsReplayed)
	}
}

func TestAutoSnapshotEvery(t *testing.T) {
	root := t.TempDir()
	ds := mustOpen(t, root, "auto", Options{SnapshotEvery: 50})
	for i := 0; i < 30; i++ {
		if err := ds.Insert(ds.Len(), "0123456789"); err != nil {
			t.Fatal(err)
		}
	}
	if ds.UnsnapshottedEvents() >= 50 {
		t.Fatalf("auto snapshot never fired: %d unsnapshotted", ds.UnsnapshottedEvents())
	}
	snapBytes, _, _ := ds.DiskUsage()
	if snapBytes == 0 {
		t.Fatal("no snapshot written by SnapshotEvery policy")
	}
	want := ds.Text()
	ds.Close()
	re := mustOpen(t, root, "auto", Options{})
	defer re.Close()
	if re.Text() != want {
		t.Fatalf("recovered %q, want %q", re.Text(), want)
	}
}

// TestCrashLosesOnlyUnsynced: DocStore.Crash truncates to the fsync
// horizon; everything synced must survive, byte-exact.
func TestCrashLosesOnlyUnsynced(t *testing.T) {
	root := t.TempDir()
	ds := mustOpen(t, root, "crashy", Options{})
	if err := ds.Insert(0, "durable prefix. "); err != nil {
		t.Fatal(err)
	}
	if err := ds.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := ds.Text()
	if err := ds.Insert(ds.Len(), "doomed suffix"); err != nil {
		t.Fatal(err)
	}
	re, err := ds.Crash()
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Text(); got != durable {
		t.Fatalf("after crash: %q, want synced prefix %q", got, durable)
	}
	// The store keeps working after recovery.
	if err := re.Insert(re.Len(), "life goes on"); err != nil {
		t.Fatal(err)
	}
}

// randomEdits drives n random events into ds, syncing after every
// burst, and returns the text at each sync point keyed by the WAL's
// on-disk length — the reference the kill-point tests compare against.
func randomEdits(t *testing.T, ds *DocStore, rng *rand.Rand, n int) (boundaries []int64, texts []string) {
	t.Helper()
	events := 0
	for events < n {
		if ds.Len() > 0 && rng.Intn(4) == 0 {
			pos := rng.Intn(ds.Len())
			cnt := 1 + rng.Intn(min(3, ds.Len()-pos))
			if err := ds.Delete(pos, cnt); err != nil {
				t.Fatal(err)
			}
			events += cnt
		} else {
			word := make([]byte, 1+rng.Intn(6))
			for i := range word {
				word[i] = byte('a' + rng.Intn(26))
			}
			if err := ds.Insert(rng.Intn(ds.Len()+1), string(word)); err != nil {
				t.Fatal(err)
			}
			events += len(word)
		}
		if err := ds.Sync(); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, ds.activeSize)
		texts = append(texts, ds.Text())
	}
	return boundaries, texts
}

// TestKillPointRecovery is the crash-recovery property test: kill the
// store mid-append at a randomized byte offset (simulated by truncating
// the single WAL segment), reopen, and the recovered text must equal
// the reference text at the last frame boundary at or below the kill
// point — every committed-and-intact frame survives, nothing else.
func TestKillPointRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 25; round++ {
		root := t.TempDir()
		ds := mustOpen(t, root, "kill", Options{SegmentMaxBytes: 1 << 30}) // one segment
		boundaries, texts := randomEdits(t, ds, rng, 120)
		seg := filepath.Join(ds.dir, segName(ds.activeSeq))
		ds.Close()

		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		kill := int64(segHeaderLen) + int64(rng.Intn(int(int64(len(data))-segHeaderLen)+1))
		if err := os.Truncate(seg, kill); err != nil {
			t.Fatal(err)
		}

		// Reference: the last sync boundary at or below the kill point.
		want := ""
		for i, b := range boundaries {
			if b <= kill {
				want = texts[i]
			}
		}

		re, err := Open(root, "kill", "tester", Options{})
		if err != nil {
			t.Fatalf("round %d kill %d: reopen: %v", round, kill, err)
		}
		if got := re.Text(); got != want {
			t.Fatalf("round %d kill %d: recovered %q, want %q", round, kill, got, want)
		}
		// Recovery must leave a writable store.
		if err := re.Insert(0, "x"); err != nil {
			t.Fatalf("round %d: store dead after recovery: %v", round, err)
		}
		re.Close()
	}
}

// TestBitFlipRecovery: a single flipped byte anywhere past the segment
// header must never produce silently wrong text — recovery yields some
// sync-boundary prefix of the history (the checksum catches the damage
// and the tail is dropped).
func TestBitFlipRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	for round := 0; round < 25; round++ {
		root := t.TempDir()
		ds := mustOpen(t, root, "flip", Options{SegmentMaxBytes: 1 << 30})
		_, texts := randomEdits(t, ds, rng, 80)
		seg := filepath.Join(ds.dir, segName(ds.activeSeq))
		ds.Close()

		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		at := segHeaderLen + rng.Intn(len(data)-segHeaderLen)
		data[at] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(seg, data, 0o666); err != nil {
			t.Fatal(err)
		}

		re, err := Open(root, "flip", "tester", Options{})
		if err != nil {
			t.Fatalf("round %d flip@%d: reopen: %v", round, at, err)
		}
		got := re.Text()
		re.Close()
		valid := got == ""
		for _, txt := range texts {
			if got == txt {
				valid = true
				break
			}
		}
		if !valid {
			t.Fatalf("round %d flip@%d: recovered text %q is not a sync-boundary state", round, at, got)
		}
	}
}

// TestTornSnapshotFallsBack: a snapshot that was cut short (crash
// mid-write before the atomic rename would normally prevent this, but
// bit rot can do it too) is skipped in favour of the older snapshot +
// WAL replay.
func TestTornSnapshotFallsBack(t *testing.T) {
	root := t.TempDir()
	ds := mustOpen(t, root, "snapfall", Options{})
	if err := ds.Insert(0, "generation one "); err != nil {
		t.Fatal(err)
	}
	if err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Insert(ds.Len(), "generation two"); err != nil {
		t.Fatal(err)
	}
	if err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := ds.Text()
	newest := filepath.Join(ds.dir, snapName(ds.snapSeq))
	ds.Close()

	// Mangle the newest snapshot.
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, root, "snapfall", Options{})
	defer re.Close()
	if got := re.Text(); got != want {
		t.Fatalf("recovered %q, want %q", got, want)
	}
	if re.Recovery().SkippedSnapshots != 1 {
		t.Fatalf("SkippedSnapshots = %d, want 1", re.Recovery().SkippedSnapshots)
	}
}

func TestRemoteApplyJournaled(t *testing.T) {
	root := t.TempDir()
	peer := egwalker.NewDoc("peer")
	if err := peer.Insert(0, "remote events incoming"); err != nil {
		t.Fatal(err)
	}
	ds := mustOpen(t, root, "remote", Options{})
	if _, err := ds.Apply(peer.Events()); err != nil {
		t.Fatal(err)
	}
	want := ds.Text()
	ds.Close()
	re := mustOpen(t, root, "remote", Options{})
	defer re.Close()
	if re.Text() != want || want != peer.Text() {
		t.Fatalf("remote apply not journaled: %q / %q / %q", re.Text(), want, peer.Text())
	}
}

func TestSaveSinceDeltaAgainstStore(t *testing.T) {
	// The WAL frames are egwalker delta blocks: SaveSince output appended
	// to a segment by hand must replay.
	root := t.TempDir()
	ds := mustOpen(t, root, "delta", Options{})
	if err := ds.Insert(0, "base"); err != nil {
		t.Fatal(err)
	}
	base := ds.Version()
	other := egwalker.NewDoc("other")
	if _, err := other.Apply(ds.Events()); err != nil {
		t.Fatal(err)
	}
	if err := other.Insert(other.Len(), " + sideline edits"); err != nil {
		t.Fatal(err)
	}
	var block bytes.Buffer
	if err := other.SaveSince(&block, base); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(ds.dir, segName(ds.activeSeq))
	ds.Close()
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(block.Bytes()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := mustOpen(t, root, "delta", Options{})
	defer re.Close()
	if got, want := re.Text(), other.Text(); got != want {
		t.Fatalf("hand-appended delta block not replayed: %q, want %q", got, want)
	}
}

func TestDoubleOpenLocked(t *testing.T) {
	root := t.TempDir()
	ds := mustOpen(t, root, "locked", Options{})
	if _, err := Open(root, "locked", "other", Options{}); err == nil {
		t.Fatal("second Open of a live document dir succeeded; WAL would be shredded")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, root, "locked", Options{}) // lock released on Close
	re.Close()
}

// TestWideFrontierJournals: an event whose parents are a many-headed
// frontier (17+ replicas all editing from the same version) must
// journal and recover — the codec's parent cap is a sanity bound, not
// a concurrency limit, and a rejected batch must not brick the store.
func TestWideFrontierJournals(t *testing.T) {
	root := t.TempDir()
	base := egwalker.NewDoc("base")
	if err := base.Insert(0, "shared"); err != nil {
		t.Fatal(err)
	}
	ds := mustOpen(t, root, "wide", Options{})
	if _, err := ds.Apply(base.Events()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		fork, err := base.Fork(fmt.Sprintf("head-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := fork.Insert(0, "x"); err != nil {
			t.Fatal(err)
		}
		if _, err := ds.Apply(fork.Events()); err != nil {
			t.Fatal(err)
		}
	}
	// This local edit's event has 20 parents.
	if err := ds.Insert(0, "!"); err != nil {
		t.Fatalf("wide-frontier edit rejected: %v", err)
	}
	want := ds.Text()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, root, "wide", Options{})
	defer re.Close()
	if re.Text() != want {
		t.Fatalf("recovered %q, want %q", re.Text(), want)
	}
}

func TestDocIDEscaping(t *testing.T) {
	ids := []string{"plain", "with/slash", "../evil", "sp ace", "uni-ço∂é", ".dotfirst", "%percent"}
	root := t.TempDir()
	for _, id := range ids {
		esc := escapeDocID(id)
		if strings.ContainsAny(esc, "/ ") || strings.HasPrefix(esc, ".") {
			t.Fatalf("escape(%q) = %q is not filesystem-safe", id, esc)
		}
		back, err := unescapeDocID(esc)
		if err != nil || back != id {
			t.Fatalf("unescape(escape(%q)) = %q, %v", id, back, err)
		}
		ds := mustOpen(t, root, id, Options{})
		if err := ds.Insert(0, id); err != nil {
			t.Fatal(err)
		}
		ds.Close()
		re := mustOpen(t, root, id, Options{})
		if re.Text() != id {
			t.Fatalf("doc %q round trip failed", id)
		}
		re.Close()
	}
}
