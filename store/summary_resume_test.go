package store

import (
	"net"
	"testing"
	"time"

	"egwalker"
	"egwalker/netsync"
)

// TestSummaryResumeExactDiff is the summary-handshake acceptance test:
// a client reconnects to a server that is missing one of the client's
// frontier events (the client edited offline), while the server holds
// events the client lacks. The summary hello must yield exactly the
// server-only events — zero re-sent history, no resume fallback — and
// the client's offline push must converge both sides.
func TestSummaryResumeExactDiff(t *testing.T) {
	srv := newTestServer(t, ServerOptions{FlushInterval: -1})
	const docID = "summary-resume"

	// Shared history: 100 events both sides hold.
	seed := egwalker.NewDoc("seed")
	for i := 0; i < 100; i++ {
		if err := seed.Insert(i, "a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Append(docID, seed.Events()); err != nil {
		t.Fatal(err)
	}

	// The client holds the shared history plus offline edits the server
	// never saw: its frontier references events unknown to the server,
	// the case where the legacy known-subset diff collapses.
	doc := egwalker.NewDoc("wanderer")
	if _, err := doc.Apply(seed.Events()); err != nil {
		t.Fatal(err)
	}
	if err := doc.Insert(0, "offline! "); err != nil {
		t.Fatal(err)
	}
	missing, err := doc.EventsSince(seed.Version())
	if err != nil {
		t.Fatal(err)
	}

	// Meanwhile the server advanced too: 20 events the client lacks.
	more := egwalker.NewDoc("seed")
	if _, err := more.Apply(seed.Events()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := more.Insert(more.Len(), "b"); err != nil {
			t.Fatal(err)
		}
	}
	serverOnly, err := more.EventsSince(seed.Version())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Append(docID, serverOnly); err != nil {
		t.Fatal(err)
	}

	cs, ss := net.Pipe()
	defer cs.Close()
	serveOne(t, srv, ss)
	pc := netsync.NewPeerConn(cs)
	err = pc.SendHello(netsync.Hello{
		DocID:   docID,
		Summary: doc.Summary(),
		Compact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The catch-up must be exactly the 20 server-only events: none of
	// the 100 shared ones, even though the server cannot resolve the
	// client's frontier.
	got := recvInto(t, pc, doc, 129)
	if got != 20 {
		t.Fatalf("summary resume received %d events, want exactly the 20 server-only ones (legacy fallback would re-send all 120)", got)
	}

	// Push the offline edits; both sides must converge.
	go func() {
		for {
			if _, _, done, err := pc.Recv(); err != nil || done {
				return
			}
		}
	}()
	if err := pc.SendEventsCompact(missing); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		text, err := srv.Text(docID)
		if err != nil {
			t.Fatal(err)
		}
		if text == doc.Text() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never merged offline edits: %q vs %q", text, doc.Text())
		}
		time.Sleep(2 * time.Millisecond)
	}

	m := srv.MetricsSnapshot()
	if m.SummaryResumes != 1 || m.Resumes != 1 {
		t.Errorf("metrics: summary_resumes=%d resumes=%d, want 1/1", m.SummaryResumes, m.Resumes)
	}
	if m.ResumeEvents != 20 {
		t.Errorf("metrics: resume_events=%d, want 20", m.ResumeEvents)
	}
	if m.ResumeFallbacks != 0 {
		t.Errorf("metrics: resume_fallbacks=%d, want 0 — a summary hello must never fall back for an unknown frontier", m.ResumeFallbacks)
	}
}

// TestSummaryResumeZeroWhenServerBehind: the pure missing-frontier
// case — the server holds a strict subset of the client's history, so
// the exact diff is empty. The legacy path re-sends everything here;
// the summary path sends nothing.
func TestSummaryResumeZeroWhenServerBehind(t *testing.T) {
	srv := newTestServer(t, ServerOptions{FlushInterval: -1})
	const docID = "summary-behind"

	seed := egwalker.NewDoc("seed")
	for i := 0; i < 50; i++ {
		if err := seed.Insert(i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Append(docID, seed.Events()); err != nil {
		t.Fatal(err)
	}

	doc := egwalker.NewDoc("ahead")
	if _, err := doc.Apply(seed.Events()); err != nil {
		t.Fatal(err)
	}
	if err := doc.Insert(doc.Len(), " and more"); err != nil {
		t.Fatal(err)
	}

	cs, ss := net.Pipe()
	defer cs.Close()
	serveOne(t, srv, ss)
	pc := netsync.NewPeerConn(cs)
	err := pc.SendHello(netsync.Hello{
		DocID:   docID,
		Summary: doc.Summary(),
		Compact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The contract sends the first events frame even when empty.
	events, _, done, err := pc.Recv()
	if err != nil || done {
		t.Fatalf("recv catch-up: done=%v err=%v", done, err)
	}
	if len(events) != 0 {
		t.Fatalf("summary resume re-sent %d events the client already holds, want 0", len(events))
	}

	m := srv.MetricsSnapshot()
	if m.SummaryResumes != 1 || m.ResumeEvents != 0 || m.ResumeFallbacks != 0 {
		t.Errorf("metrics: summary_resumes=%d resume_events=%d resume_fallbacks=%d, want 1/0/0",
			m.SummaryResumes, m.ResumeEvents, m.ResumeFallbacks)
	}
}

// TestLegacyResumeUnknownFrontierCountsFallback pins the legacy
// behaviour the summary hello exists to fix: a frontier hello naming
// events the server lacks still converges, but only by re-sending
// covered history — and the server counts it as a resume fallback so
// operators can see legacy clients paying that tax.
func TestLegacyResumeUnknownFrontierCountsFallback(t *testing.T) {
	srv := newTestServer(t, ServerOptions{FlushInterval: -1})
	const docID = "legacy-fallback"

	seed := egwalker.NewDoc("seed")
	for i := 0; i < 40; i++ {
		if err := seed.Insert(i, "y"); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Append(docID, seed.Events()); err != nil {
		t.Fatal(err)
	}

	doc := egwalker.NewDoc("wanderer")
	if _, err := doc.Apply(seed.Events()); err != nil {
		t.Fatal(err)
	}
	if err := doc.Insert(0, "hi "); err != nil {
		t.Fatal(err)
	}
	missing, err := doc.EventsSince(seed.Version())
	if err != nil {
		t.Fatal(err)
	}

	cs, ss := net.Pipe()
	defer cs.Close()
	serveOne(t, srv, ss)
	pc := netsync.NewPeerConn(cs)
	if err := pc.SendDocHelloResume(docID, doc.Version()); err != nil {
		t.Fatal(err)
	}
	// The server drops the unknown head, anchors on the empty known
	// subset, and re-sends the 40 events the client already has.
	received := 0
	for received < 40 {
		events, _, done, err := pc.Recv()
		if err != nil || done {
			t.Fatalf("recv: done=%v err=%v after %d events", done, err, received)
		}
		received += len(events)
	}
	go func() {
		for {
			if _, _, done, err := pc.Recv(); err != nil || done {
				return
			}
		}
	}()
	if err := pc.SendEventsCompact(missing); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		text, err := srv.Text(docID)
		if err != nil {
			t.Fatal(err)
		}
		if text == "hi "+seed.Text() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never merged offline edits: %q", text)
		}
		time.Sleep(2 * time.Millisecond)
	}

	m := srv.MetricsSnapshot()
	if m.ResumeFallbacks != 1 {
		t.Errorf("metrics: resume_fallbacks=%d, want 1 — dropped frontier heads must be surfaced", m.ResumeFallbacks)
	}
	if m.SummaryResumes != 0 {
		t.Errorf("metrics: summary_resumes=%d, want 0 for a legacy hello", m.SummaryResumes)
	}
}
