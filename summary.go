package egwalker

import (
	"fmt"
	"sort"

	"egwalker/internal/causal"
	"egwalker/internal/oplog"
)

// SeqRange is a half-open range [Start, End) of one agent's sequence
// numbers.
type SeqRange struct {
	Start, End int
}

// VersionSummary describes the complete set of events a replica holds,
// as per-agent run-length ranges of sequence numbers: for each agent,
// a sorted list of disjoint, non-abutting [Start, End) seq ranges.
// Agents emit contiguous seqs, so a replica holding an agent's full
// history stores exactly one range per agent no matter how long the
// history is — a summary costs O(distinct agent runs), where a
// frontier version costs O(heads) but loses everything below the
// heads.
//
// That lost information is the point: a frontier can only anchor a
// diff on a peer that knows every head, so a serving side that is
// missing even one head must fall back to a lossy known-subset and
// re-send an arbitrarily large prefix the client already has. Two
// summaries instead intersect exactly (IntersectSummary), and the
// set each replica holds is causally closed, so the intersection is
// causally closed too — EventsSinceSummary anchored on it is an
// exact diff in both directions, regardless of which side is ahead.
type VersionSummary map[string][]SeqRange

// Contains reports whether the summary covers id.
func (s VersionSummary) Contains(id EventID) bool {
	ranges := s[id.Agent]
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].End > id.Seq })
	return i < len(ranges) && ranges[i].Start <= id.Seq
}

// NumEvents counts the events the summary covers.
func (s VersionSummary) NumEvents() int {
	n := 0
	for _, ranges := range s {
		for _, r := range ranges {
			n += r.End - r.Start
		}
	}
	return n
}

// NumRanges counts the seq ranges across all agents — the size that
// matters on the wire, independent of how many events the ranges
// cover.
func (s VersionSummary) NumRanges() int {
	n := 0
	for _, ranges := range s {
		n += len(ranges)
	}
	return n
}

// Validate checks structural invariants: for every agent at least one
// range, each with 0 <= Start < End, sorted ascending and separated by
// at least one absent seq (abutting ranges must be merged). Summaries
// built by Summary or decoded by netsync always validate; hand-built
// ones should be checked before use.
func (s VersionSummary) Validate() error {
	for agent, ranges := range s {
		if len(ranges) == 0 {
			return fmt.Errorf("egwalker: summary agent %q has no ranges", agent)
		}
		prevEnd := -1
		for _, r := range ranges {
			if r.Start < 0 || r.End <= r.Start {
				return fmt.Errorf("egwalker: summary agent %q has bad range [%d,%d)", agent, r.Start, r.End)
			}
			if r.Start <= prevEnd {
				return fmt.Errorf("egwalker: summary agent %q ranges overlap or abut at %d", agent, r.Start)
			}
			prevEnd = r.End
		}
	}
	return nil
}

// Summary returns a run-length summary of every event in the
// document's history. It reads the causal graph's per-agent index —
// maintained incrementally as events are added — so the cost is
// O(graph spans), not O(events).
func (d *Doc) Summary() VersionSummary {
	s := make(VersionSummary)
	d.log.Graph.EachAgentRun(func(agent string, seqStart, seqEnd int) bool {
		s[agent] = append(s[agent], SeqRange{Start: seqStart, End: seqEnd})
		return true
	})
	return s
}

// IntersectSummary returns the exact intersection of two summaries:
// the events covered by both. Because each input describes a causally
// closed event set (everything a replica holds), the intersection is
// causally closed as well, which is what lets a diff anchor on it.
func IntersectSummary(a, b VersionSummary) VersionSummary {
	out := make(VersionSummary)
	for agent, ar := range a {
		br, ok := b[agent]
		if !ok {
			continue
		}
		var merged []SeqRange
		i, j := 0, 0
		for i < len(ar) && j < len(br) {
			lo := max(ar[i].Start, br[j].Start)
			hi := min(ar[i].End, br[j].End)
			if lo < hi {
				merged = append(merged, SeqRange{Start: lo, End: hi})
			}
			if ar[i].End < br[j].End {
				i++
			} else {
				j++
			}
		}
		if len(merged) > 0 {
			out[agent] = merged
		}
	}
	return out
}

// EventsSinceSummary returns exactly the events this replica holds
// that the summary does not cover, in a valid causal order. This is
// the summary handshake's serving side: pass the other replica's
// Summary() to compute precisely what to send it — never a lossy
// known-subset resend.
//
// The output's causal validity does not require the summary to be any
// particular replica's: events are emitted in storage order (a
// topological order), and any parent of an emitted event that is not
// itself emitted is covered by the summary-intersected-with-us, which
// for a well-formed (causally closed) peer summary means the peer has
// it. A malformed summary can at worst make the receiver buffer
// events, never corrupt it.
func (d *Doc) EventsSinceSummary(s VersionSummary) ([]Event, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []Event
	d.log.Graph.EachEntry(func(span causal.Span, agent string, seqStart int, parents []causal.LV) bool {
		ranges := s[agent]
		lo, hi := seqStart, seqStart+span.Len()
		i := sort.Search(len(ranges), func(i int) bool { return ranges[i].End > lo })
		for lo < hi {
			if i < len(ranges) && ranges[i].Start <= lo {
				// Covered: the peer has [lo, ranges[i].End).
				lo = min(ranges[i].End, hi)
				i++
				continue
			}
			uncEnd := hi
			if i < len(ranges) && ranges[i].Start < hi {
				uncEnd = ranges[i].Start
			}
			sub := causal.Span{
				Start: span.Start + causal.LV(lo-seqStart),
				End:   span.Start + causal.LV(uncEnd-seqStart),
			}
			d.log.EachOp(sub, func(lv causal.LV, op oplog.Op) bool {
				out = append(out, d.eventAt(lv, op))
				return true
			})
			lo = uncEnd
		}
		return true
	})
	return out, nil
}
