package egwalker

import (
	"reflect"
	"testing"
)

// summaryIDSet expands a summary into the explicit event-ID set, the
// brute-force reference the run-length form must match.
func summaryIDSet(s VersionSummary) map[EventID]bool {
	set := make(map[EventID]bool)
	for agent, ranges := range s {
		for _, r := range ranges {
			for seq := r.Start; seq < r.End; seq++ {
				set[EventID{Agent: agent, Seq: seq}] = true
			}
		}
	}
	return set
}

func eventIDSet(events []Event) map[EventID]bool {
	set := make(map[EventID]bool)
	for _, ev := range events {
		set[ev.ID] = true
	}
	return set
}

// divergedPair builds two replicas with overlapping-but-different
// histories: a shared prefix, then independent edits on each side.
func divergedPair(t *testing.T) (*Doc, *Doc) {
	t.Helper()
	a := NewDoc("alice")
	if err := a.Insert(0, "shared prefix "); err != nil {
		t.Fatal(err)
	}
	b, err := a.Fork("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(a.Len(), "alice's tail"); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(b.Len(), "bob!"); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(0, 3); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSummaryMatchesEventSet(t *testing.T) {
	a, b := divergedPair(t)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Doc{a, b} {
		s := d.Summary()
		if err := s.Validate(); err != nil {
			t.Fatalf("Summary failed Validate: %v", err)
		}
		want := eventIDSet(d.Events())
		if got := summaryIDSet(s); !reflect.DeepEqual(got, want) {
			t.Fatalf("summary set %v != event set %v", got, want)
		}
		if s.NumEvents() != d.NumEvents() {
			t.Fatalf("NumEvents %d != %d", s.NumEvents(), d.NumEvents())
		}
		for id := range want {
			if !s.Contains(id) {
				t.Fatalf("summary missing %v", id)
			}
		}
		if s.Contains(EventID{Agent: "alice", Seq: 1 << 30}) {
			t.Fatal("summary contains an event far past the history")
		}
	}
}

func TestIntersectSummaryBruteForce(t *testing.T) {
	a, b := divergedPair(t)
	sa, sb := a.Summary(), b.Summary()
	inter := IntersectSummary(sa, sb)
	if err := inter.Validate(); err != nil {
		t.Fatalf("intersection failed Validate: %v", err)
	}
	setA, setB := summaryIDSet(sa), summaryIDSet(sb)
	want := make(map[EventID]bool)
	for id := range setA {
		if setB[id] {
			want[id] = true
		}
	}
	if got := summaryIDSet(inter); !reflect.DeepEqual(got, want) {
		t.Fatalf("intersection %v != brute force %v", got, want)
	}
}

// TestEventsSinceSummaryExact is the heart of the handshake fix: when
// the serving side is *behind* the peer (it lacks one of the peer's
// frontier events), a frontier-anchored diff degrades to re-sending
// history, but a summary-anchored diff sends exactly the difference —
// here, nothing.
func TestEventsSinceSummaryExact(t *testing.T) {
	a, b := divergedPair(t)

	// b serves a reconnecting a. The frontier path loses information:
	// a's head is unknown to b, so the known-subset collapses and b
	// re-sends its history.
	legacy, err := b.EventsSince(b.KnownSubset(a.Version()))
	if err != nil {
		t.Fatal(err)
	}
	resent := 0
	for _, ev := range legacy {
		if a.Knows(ev.ID) {
			resent++
		}
	}
	if resent == 0 {
		t.Fatal("scenario broken: expected the legacy path to re-send known events")
	}

	// The summary path sends exactly b's events that a lacks.
	diff, err := b.EventsSinceSummary(a.Summary())
	if err != nil {
		t.Fatal(err)
	}
	aSet := eventIDSet(a.Events())
	want := make(map[EventID]bool)
	for id := range eventIDSet(b.Events()) {
		if !aSet[id] {
			want[id] = true
		}
	}
	if got := eventIDSet(diff); !reflect.DeepEqual(got, want) {
		t.Fatalf("summary diff %v != set difference %v", got, want)
	}
	for _, ev := range diff {
		if a.Knows(ev.ID) {
			t.Fatalf("summary diff re-sent %v, which the peer already has", ev.ID)
		}
	}

	// Exchanging summary diffs in both directions converges the pair.
	back, err := a.EventsSinceSummary(b.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(diff); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Apply(back); err != nil {
		t.Fatal(err)
	}
	if a.Text() != b.Text() || a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("summary exchange did not converge: %q vs %q", a.Text(), b.Text())
	}
}

func TestEventsSinceSummaryEmptyAndFull(t *testing.T) {
	a, _ := divergedPair(t)
	all, err := a.EventsSinceSummary(VersionSummary{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != a.NumEvents() {
		t.Fatalf("empty summary got %d events, want the full history (%d)", len(all), a.NumEvents())
	}
	fresh := NewDoc("fresh")
	if _, err := fresh.Apply(all); err != nil {
		t.Fatal(err)
	}
	if fresh.Text() != a.Text() {
		t.Fatalf("replaying the full diff diverged: %q vs %q", fresh.Text(), a.Text())
	}
	none, err := a.EventsSinceSummary(a.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("self summary got %d events, want 0", len(none))
	}
}

func TestSummaryValidate(t *testing.T) {
	bad := []VersionSummary{
		{"a": nil},
		{"a": {{Start: -1, End: 3}}},
		{"a": {{Start: 3, End: 3}}},
		{"a": {{Start: 5, End: 2}}},
		{"a": {{Start: 0, End: 3}, {Start: 2, End: 5}}}, // overlap
		{"a": {{Start: 0, End: 3}, {Start: 3, End: 5}}}, // abutting
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %v", i, s)
		}
		if _, err := NewDoc("x").EventsSinceSummary(s); err == nil {
			t.Fatalf("case %d: EventsSinceSummary accepted %v", i, s)
		}
	}
	good := VersionSummary{"a": {{Start: 0, End: 3}, {Start: 4, End: 5}}, "b": {{Start: 2, End: 9}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected a well-formed summary: %v", err)
	}
}
