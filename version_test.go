package egwalker

import "testing"

// TestKnownSubset: filtering a foreign version down to the locally
// known events, so it can anchor EventsSince (the resume path).
func TestKnownSubset(t *testing.T) {
	a := NewDoc("a")
	if err := a.Insert(0, "shared"); err != nil {
		t.Fatal(err)
	}
	b, err := a.Fork("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(0, "only-b "); err != nil {
		t.Fatal(err)
	}

	// b's version references events a has never seen.
	known := a.KnownSubset(b.Version())
	for _, id := range known {
		if !a.Knows(id) {
			t.Fatalf("KnownSubset kept unknown event %v", id)
		}
	}
	// The narrowed version must anchor a diff without error.
	if _, err := a.EventsSince(known); err != nil {
		t.Fatalf("EventsSince(KnownSubset): %v", err)
	}
	// The raw foreign version must not (it references unknown events)
	// — this is exactly why KnownSubset exists.
	if _, err := a.EventsSince(b.Version()); err == nil {
		t.Fatal("EventsSince accepted a version with unknown events; KnownSubset would be pointless")
	}

	// A fully known version passes through intact.
	same := b.KnownSubset(b.Version())
	if len(same) != len(b.Version()) {
		t.Fatalf("KnownSubset dropped known events: %v vs %v", same, b.Version())
	}
	// Nil stays nil-ish (empty), meaning "send everything".
	if got := a.KnownSubset(nil); len(got) != 0 {
		t.Fatalf("KnownSubset(nil) = %v", got)
	}
}
